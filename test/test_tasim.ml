(* Unit and property tests for the timed asynchronous system simulator. *)

open Tasim

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check Alcotest.int "ms" 1_000 (Time.of_ms 1);
  check Alcotest.int "sec" 1_000_000 (Time.of_sec 1);
  check Alcotest.int "sec_f" 1_500_000 (Time.of_sec_f 1.5);
  check (Alcotest.float 1e-9) "to_ms" 1.5 (Time.to_ms_f 1_500);
  check Alcotest.int "add" 30 (Time.add 10 20);
  check Alcotest.int "sub" (-10) (Time.sub 10 20);
  check Alcotest.int "mul" 60 (Time.mul 20 3);
  check Alcotest.int "div" 10 (Time.div 20 2)

let test_time_scale () =
  check Alcotest.int "identity" 1000 (Time.scale 1000 1.0);
  check Alcotest.int "double" 2000 (Time.scale 1000 2.0);
  check Alcotest.int "rounds" 1000 (Time.scale 999 1.001);
  check Alcotest.int "negative" (-500) (Time.scale (-1000) 0.5)

let test_time_pp () =
  check Alcotest.string "us" "42us" (Time.to_string (Time.of_us 42));
  check Alcotest.string "ms" "1.500ms" (Time.to_string 1_500);
  check Alcotest.string "s" "2.000s" (Time.to_string (Time.of_sec 2));
  check Alcotest.string "inf" "inf" (Time.to_string Time.infinity)

let prop_time_scale_monotone =
  QCheck.Test.make ~name:"Time.scale is monotone for positive factors"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Time.scale lo 1.25 <= Time.scale hi 1.25)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independence () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let x = Rng.int64 b in
  (* drawing more from a must not change b's past *)
  let a' = Rng.create 42 in
  let b' = Rng.split a' in
  ignore (Rng.int64 a');
  check Alcotest.int64 "split stream reproducible" x (Rng.int64 b |> fun _ -> x);
  ignore b'

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a)
    (Rng.int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays within [0, bound)"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.float rng in
        if v < 0.0 || v >= 1.0 then ok := false
      done;
      !ok)

let prop_rng_uniform_time =
  QCheck.Test.make ~name:"Rng.uniform_time within range"
    QCheck.(triple small_int (int_bound 10_000) (int_bound 10_000))
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.uniform_time rng lo hi in
      lo <= v && v <= hi)

let test_rng_exponential_positive () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    if Rng.exponential rng ~mean:5.0 < 0.0 then
      Alcotest.fail "negative exponential draw"
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id)
    sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  Heap.add h ~time:30 "c";
  Heap.add h ~time:10 "a";
  Heap.add h ~time:20 "b";
  check (Alcotest.option Alcotest.int) "peek" (Some 10) (Heap.peek_time h);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "sorted drain"
    [ (10, "a"); (20, "b"); (30, "c") ]
    (Heap.drain h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~time:5 v) [ "first"; "second"; "third" ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "FIFO among equal times"
    [ (5, "first"); (5, "second"); (5, "third") ]
    (Heap.drain h)

let test_heap_grows () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.add h ~time:i i
  done;
  check Alcotest.int "size" 1000 (Heap.size h);
  let popped = Heap.drain h in
  check Alcotest.int "drained" 1000 (List.length popped);
  check Alcotest.bool "sorted" true
    (List.for_all2 (fun (t, v) i -> t = i && v = i) popped
       (List.init 1000 Fun.id))

let test_heap_clear () =
  let h = Heap.create () in
  Heap.add h ~time:1 1;
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

let prop_heap_stable_interleaved =
  (* ops: [Some time] adds an entry (payload = (time, insertion index)),
     [None] pops. The heap must agree with a stable-sorted model at
     every pop and at the final drain; generated op lists run to 400
     entries, so live size crosses the initial 64-slot capacity. *)
  QCheck.Test.make
    ~name:"Heap: interleaved add/pop drains as a stable (time,seq) sort"
    QCheck.(list_of_size (Gen.int_range 0 400) (option (int_bound 20)))
    (fun ops ->
      let h = Heap.create () in
      let rec insert ((t, s) as x) = function
        | [] -> [ x ]
        | (t', s') :: _ as rest when t < t' || (t = t' && s < s') -> x :: rest
        | y :: rest -> y :: insert x rest
      in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some time ->
            Heap.add h ~time (time, !seq);
            model := insert (time, !seq) !model;
            incr seq
          | None -> (
            match (Heap.pop h, !model) with
            | None, [] -> ()
            | Some (pt, (vt, vs)), (mt, ms) :: rest ->
              model := rest;
              if not (pt = mt && vt = mt && vs = ms) then ok := false
            | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      let expected = List.map (fun (t, s) -> (t, (t, s))) !model in
      !ok && Heap.drain h = expected)

let test_heap_pop_min () =
  let h = Heap.create () in
  Alcotest.check_raises "min_time on empty"
    (Invalid_argument "Heap.min_time: empty heap") (fun () ->
      ignore (Heap.min_time h));
  Alcotest.check_raises "pop_min on empty"
    (Invalid_argument "Heap.pop_min: empty heap") (fun () ->
      ignore (Heap.pop_min h));
  Heap.add h ~time:20 "b";
  Heap.add h ~time:10 "a";
  check Alcotest.int "min_time" 10 (Heap.min_time h);
  check Alcotest.string "pop_min" "a" (Heap.pop_min h);
  check Alcotest.int "min_time after pop" 20 (Heap.min_time h);
  check Alcotest.string "pop_min again" "b" (Heap.pop_min h);
  check Alcotest.bool "empty" true (Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"Heap pops in nondecreasing time order"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.add h ~time:t t) times;
      let popped = List.map fst (Heap.drain h) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted popped && List.length popped = List.length times)

(* ------------------------------------------------------------------ *)
(* Proc_id / Proc_set *)

let test_proc_ring () =
  let p = Proc_id.of_int 4 in
  check Alcotest.int "succ wraps" 0 (Proc_id.to_int (Proc_id.successor p ~n:5));
  check Alcotest.int "pred wraps" 4
    (Proc_id.to_int (Proc_id.predecessor (Proc_id.of_int 0) ~n:5));
  check Alcotest.int "distance" 3
    (Proc_id.ring_distance ~from:(Proc_id.of_int 4) ~to_:(Proc_id.of_int 2)
       ~n:5);
  check Alcotest.int "distance self" 0
    (Proc_id.ring_distance ~from:p ~to_:p ~n:5)

let test_proc_id_invalid () =
  Alcotest.check_raises "negative id" (Invalid_argument
    "Proc_id.of_int: negative id") (fun () -> ignore (Proc_id.of_int (-1)))

let set_of ids = Proc_set.of_list (List.map Proc_id.of_int ids)

let test_proc_set_ring () =
  let s = set_of [ 0; 2; 3 ] in
  let succ p = Proc_set.successor_in s (Proc_id.of_int p) ~n:5 in
  let pred p = Proc_set.predecessor_in s (Proc_id.of_int p) ~n:5 in
  check (Alcotest.option Alcotest.int) "succ 0" (Some 2)
    (Option.map Proc_id.to_int (succ 0));
  check (Alcotest.option Alcotest.int) "succ 3 wraps" (Some 0)
    (Option.map Proc_id.to_int (succ 3));
  check (Alcotest.option Alcotest.int) "succ of non-member" (Some 2)
    (Option.map Proc_id.to_int (succ 1));
  check (Alcotest.option Alcotest.int) "pred 0 wraps" (Some 3)
    (Option.map Proc_id.to_int (pred 0));
  check (Alcotest.option Alcotest.int) "pred 2" (Some 0)
    (Option.map Proc_id.to_int (pred 2));
  check (Alcotest.option Alcotest.int) "singleton has no other" None
    (Option.map Proc_id.to_int
       (Proc_set.successor_in (set_of [ 1 ]) (Proc_id.of_int 1) ~n:5))

let test_proc_set_majority () =
  check Alcotest.bool "3 of 5" true (Proc_set.is_majority (set_of [ 0; 1; 2 ]) ~n:5);
  check Alcotest.bool "2 of 5" false (Proc_set.is_majority (set_of [ 0; 1 ]) ~n:5);
  check Alcotest.bool "2 of 4" false (Proc_set.is_majority (set_of [ 0; 1 ]) ~n:4);
  check Alcotest.bool "3 of 4" true (Proc_set.is_majority (set_of [ 0; 1; 2 ]) ~n:4)

let prop_proc_set_ops_model =
  let gen = QCheck.(pair (list (int_bound 9)) (list (int_bound 9))) in
  QCheck.Test.make ~name:"Proc_set union/inter/diff match list model" gen
    (fun (a, b) ->
      let sa = set_of a and sb = set_of b in
      let la = List.sort_uniq compare a and lb = List.sort_uniq compare b in
      let to_ints s = List.map Proc_id.to_int (Proc_set.to_list s) in
      to_ints (Proc_set.union sa sb)
      = List.sort_uniq compare (la @ lb)
      && to_ints (Proc_set.inter sa sb)
         = List.filter (fun x -> List.mem x lb) la
      && to_ints (Proc_set.diff sa sb)
         = List.filter (fun x -> not (List.mem x lb)) la)

let prop_successor_in_member =
  QCheck.Test.make ~name:"successor_in returns a member of the set"
    QCheck.(pair (list (int_bound 7)) (int_bound 7))
    (fun (ids, p) ->
      let s = set_of ids in
      match Proc_set.successor_in s (Proc_id.of_int p) ~n:8 with
      | Some q -> Proc_set.mem q s
      | None ->
        Proc_set.is_empty (Proc_set.remove (Proc_id.of_int p) s))

(* ------------------------------------------------------------------ *)
(* Hardware clock *)

let test_clock_reading () =
  let c = Hardware_clock.create ~offset:(Time.of_ms 100) ~drift:0.0 in
  check Alcotest.int "offset only" 101_000
    (Hardware_clock.reading c ~real:(Time.of_ms 1));
  let fast = Hardware_clock.create ~offset:Time.zero ~drift:1e-3 in
  check Alcotest.int "drift" 1_001_000
    (Hardware_clock.reading fast ~real:(Time.of_sec 1))

let prop_clock_inverse =
  QCheck.Test.make ~name:"real_of_reading inverts reading within 1us"
    QCheck.(triple (int_bound 100_000_000) (int_bound 1_000_000) (int_range 0 100))
    (fun (real, offset, drift_ppm) ->
      let drift = float_of_int drift_ppm *. 1e-6 in
      let c = Hardware_clock.create ~offset ~drift in
      let r = Hardware_clock.reading c ~real in
      let real' = Hardware_clock.real_of_reading c ~clock:r in
      abs (real - real') <= 1)

let prop_clock_monotone =
  QCheck.Test.make ~name:"clock reading is monotone"
    QCheck.(triple (int_bound 10_000_000) (int_bound 10_000_000) (int_range 0 100))
    (fun (a, b, drift_ppm) ->
      let drift = (float_of_int drift_ppm *. 1e-6) -. 5e-5 in
      let c = Hardware_clock.create ~offset:(Time.of_ms 5) ~drift in
      let lo = min a b and hi = max a b in
      Hardware_clock.reading c ~real:lo <= Hardware_clock.reading c ~real:hi)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.incr_by s "b" 5;
  check Alcotest.int "a" 2 (Stats.count s "a");
  check Alcotest.int "b" 5 (Stats.count s "b");
  check Alcotest.int "missing" 0 (Stats.count s "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted" [ ("a", 2); ("b", 5) ] (Stats.counters s)

let test_stats_summary () =
  let s = Stats.create () in
  List.iter (Stats.record s "x") [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  match Stats.summary_of s "x" with
  | None -> Alcotest.fail "expected summary"
  | Some sum ->
    check Alcotest.int "n" 5 sum.Stats.n;
    check (Alcotest.float 1e-9) "mean" 3.0 sum.Stats.mean;
    check (Alcotest.float 1e-9) "p50" 3.0 sum.Stats.p50;
    check (Alcotest.float 1e-9) "min" 1.0 sum.Stats.min;
    check (Alcotest.float 1e-9) "max" 5.0 sum.Stats.max

let test_stats_empty_summary () =
  check Alcotest.bool "none" true (Stats.summarize [||] = None)

let test_stats_interned () =
  let s = Stats.create () in
  let c = Stats.counter s "hot" in
  check Alcotest.int "interned at zero" 0 (Stats.count s "hot");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "listed at zero" [ ("hot", 0) ] (Stats.counters s);
  Stats.bump c;
  Stats.bump c;
  Stats.incr s "hot";
  Stats.bump_by c 3;
  (* both APIs observe the same cell *)
  check Alcotest.int "string api sees bumps" 6 (Stats.count s "hot");
  check Alcotest.int "handle sees string incrs" 6 (Stats.counter_value c);
  let c' = Stats.counter s "hot" in
  Stats.bump c';
  check Alcotest.int "re-interning aliases the cell" 7 (Stats.count s "hot")

let test_stats_merge_interned () =
  let a = Stats.create () and b = Stats.create () in
  let ca = Stats.counter a "x" in
  Stats.bump ca;
  let cb = Stats.counter b "x" in
  Stats.bump_by cb 2;
  Stats.incr b "y";
  Stats.merge a b;
  check Alcotest.int "merged interned counts" 3 (Stats.count a "x");
  check Alcotest.int "merged string counts" 1 (Stats.count a "y");
  (* handles survive the merge, on both sides *)
  Stats.bump ca;
  check Alcotest.int "dst handle live after merge" 4 (Stats.count a "x");
  Stats.bump cb;
  check Alcotest.int "src unaffected by dst bump" 3 (Stats.count b "x")

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.incr a "x";
  Stats.incr b "x";
  Stats.record b "s" 1.0;
  Stats.merge a b;
  check Alcotest.int "merged counter" 2 (Stats.count a "x");
  check Alcotest.int "merged samples" 1 (Array.length (Stats.samples a "s"))

let prop_stats_percentile_order =
  QCheck.Test.make ~name:"p50 <= p95 <= p99 <= max"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun values ->
      match Stats.summarize (Array.of_list values) with
      | None -> false
      | Some s ->
        s.Stats.p50 <= s.Stats.p95 +. 1e-9
        && s.Stats.p95 <= s.Stats.p99 +. 1e-9
        && s.Stats.p99 <= s.Stats.max +. 1e-9
        && s.Stats.min <= s.Stats.p50 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Net *)

let test_net_config_validation () =
  let bad d =
    match Net.validate_config d with Ok () -> false | Error _ -> true
  in
  check Alcotest.bool "default ok" true
    (Net.validate_config Net.default_config = Ok ());
  check Alcotest.bool "delay_max > delta rejected" true
    (bad { Net.default_config with Net.delay_max = Time.of_ms 11 });
  check Alcotest.bool "late without headroom rejected" true
    (bad
       {
         Net.default_config with
         Net.late_prob = 0.5;
         late_delay_max = Time.of_ms 5;
       });
  check Alcotest.bool "bad probability rejected" true
    (bad { Net.default_config with Net.omission_prob = 1.5 })

let test_net_delays_within_bounds () =
  let net = Net.create Net.default_config (Rng.create 1) in
  for _ = 1 to 200 do
    match Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) () with
    | Net.Deliver_after d ->
      if d < Net.default_config.Net.delay_min || d > Net.default_config.Net.delay_max
      then Alcotest.fail "delay out of bounds"
    | Net.Dropped _ -> Alcotest.fail "unexpected drop with prob 0"
  done

let test_net_omission_rate () =
  let cfg = { Net.default_config with Net.omission_prob = 0.5 } in
  let net = Net.create cfg (Rng.create 2) in
  let drops = ref 0 in
  for _ = 1 to 1000 do
    match Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) () with
    | Net.Dropped _ -> incr drops
    | Net.Deliver_after _ -> ()
  done;
  if !drops < 400 || !drops > 600 then
    Alcotest.failf "omission rate off: %d/1000" !drops

let test_net_late_messages_exceed_delta () =
  let cfg =
    { Net.default_config with Net.late_prob = 1.0; late_delay_max = Time.of_ms 50 }
  in
  let net = Net.create cfg (Rng.create 3) in
  for _ = 1 to 100 do
    match Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) () with
    | Net.Deliver_after d ->
      if d <= cfg.Net.delta then Alcotest.fail "late message not late"
    | Net.Dropped _ -> Alcotest.fail "unexpected drop"
  done

let test_net_partition () =
  let net = Net.create Net.default_config (Rng.create 4) in
  Net.set_partition net [ set_of [ 0; 1 ]; set_of [ 2 ] ];
  let fate src dst =
    Net.fate net ~src:(Proc_id.of_int src) ~dst:(Proc_id.of_int dst) ()
  in
  (match fate 0 1 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "same block dropped");
  (match fate 0 2 with
  | Net.Dropped "partition" -> ()
  | _ -> Alcotest.fail "cross block delivered");
  (* p3 is in no block: isolated *)
  (match fate 3 0 with
  | Net.Dropped "partition" -> ()
  | _ -> Alcotest.fail "isolated process delivered");
  Net.heal net;
  match fate 0 2 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "heal did not restore"

let test_net_partition_unlisted_singletons () =
  (* regression: a process absent from every block used to be isolated
     by accident (List.find_opt missed and everything dropped as
     "partition"); the semantics are now explicit — unlisted processes
     are singleton blocks. Topology scenarios name subsets, so all
     three pairings matter. *)
  let net = Net.create Net.default_config (Rng.create 11) in
  Net.set_partition net [ set_of [ 0; 1 ] ];
  let fate src dst =
    Net.fate net ~src:(Proc_id.of_int src) ~dst:(Proc_id.of_int dst) ()
  in
  (match fate 2 0 with
  | Net.Dropped "partition" -> ()
  | _ -> Alcotest.fail "unlisted->listed delivered");
  (match fate 0 2 with
  | Net.Dropped "partition" -> ()
  | _ -> Alcotest.fail "listed->unlisted delivered");
  (match fate 2 3 with
  | Net.Dropped "partition" -> ()
  | _ -> Alcotest.fail "unlisted->unlisted (distinct) delivered");
  (* a singleton block contains its process: the self-loop stays up *)
  (match fate 2 2 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "unlisted self-loop dropped");
  match Net.set_partition net [ set_of [ 0; 1 ]; set_of [ 1; 2 ] ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlapping blocks accepted"

let test_net_link_overrides () =
  let pid = Proc_id.of_int in
  let net = Net.create Net.default_config (Rng.create 12) in
  check Alcotest.int "no overrides initially" 0 (Net.links_overridden net);
  (* degrade 0->1 only: delays pinned to [9ms, 10ms], the reverse
     direction keeps the global [1ms, 8ms] *)
  Net.set_link net ~src:(pid 0) ~dst:(pid 1) ~delay_min:(Time.of_ms 9)
    ~delay_max:(Time.of_ms 10) ();
  check Alcotest.int "one override" 1 (Net.links_overridden net);
  let eff = Net.link_config net ~src:(pid 0) ~dst:(pid 1) in
  check Alcotest.int "override delay_min" (Time.of_ms 9) eff.Net.delay_min;
  check Alcotest.int "override keeps global delta" Net.default_config.Net.delta
    eff.Net.delta;
  let rev = Net.link_config net ~src:(pid 1) ~dst:(pid 0) in
  check Alcotest.int "reverse direction untouched"
    Net.default_config.Net.delay_min rev.Net.delay_min;
  for _ = 1 to 200 do
    (match Net.fate net ~src:(pid 0) ~dst:(pid 1) () with
    | Net.Deliver_after d ->
      if d < Time.of_ms 9 || d > Time.of_ms 10 then
        Alcotest.failf "slow link delay %a outside [9ms,10ms]" Time.pp d
    | Net.Dropped _ -> Alcotest.fail "unexpected drop on slow link");
    match Net.fate net ~src:(pid 1) ~dst:(pid 0) () with
    | Net.Deliver_after d ->
      if d > Time.of_ms 8 then
        Alcotest.failf "timely reverse link delayed %a" Time.pp d
    | Net.Dropped _ -> Alcotest.fail "unexpected drop on reverse link"
  done;
  (* re-setting replaces wholesale: the delay override is gone *)
  Net.set_link net ~src:(pid 0) ~dst:(pid 1) ~omission_prob:1.0 ();
  check Alcotest.int "still one override" 1 (Net.links_overridden net);
  (match Net.fate net ~src:(pid 0) ~dst:(pid 1) () with
  | Net.Dropped "omission" -> ()
  | _ -> Alcotest.fail "lossy override not applied");
  Net.clear_link net ~src:(pid 0) ~dst:(pid 1);
  check Alcotest.int "cleared" 0 (Net.links_overridden net);
  let back = Net.link_config net ~src:(pid 0) ~dst:(pid 1) in
  check Alcotest.bool "back to global" true (back = Net.default_config)

let test_net_link_validation () =
  let pid = Proc_id.of_int in
  let net = Net.create Net.default_config (Rng.create 13) in
  let rejected f = match f () with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  check Alcotest.bool "delay_max > delta rejected" true
    (rejected (fun () ->
         Net.set_link net ~src:(pid 0) ~dst:(pid 1)
           ~delay_max:(Time.of_ms 11) ()));
  check Alcotest.bool "delay_max < delay_min rejected" true
    (rejected (fun () ->
         Net.set_link net ~src:(pid 0) ~dst:(pid 1)
           ~delay_min:(Time.of_ms 5) ~delay_max:(Time.of_ms 4) ()));
  check Alcotest.bool "late without late_delay_max > delta rejected" true
    (rejected (fun () ->
         Net.set_link net ~src:(pid 0) ~dst:(pid 1) ~late_prob:0.5
           ~late_delay_max:(Time.of_ms 10) ()));
  check Alcotest.bool "omission_prob out of range rejected" true
    (rejected (fun () ->
         Net.set_link net ~src:(pid 0) ~dst:(pid 1) ~omission_prob:1.5 ()));
  check Alcotest.int "no override leaked by rejections" 0
    (Net.links_overridden net)

(* The model invariant, as a property over random link overrides: every
   delivery drawn under the effective config of a (possibly overridden)
   link is either timely within [delay_min, delay_max] or late within
   (delta, late_delay_max] — never in between, never beyond. *)
let prop_net_fate_delay_bounds =
  QCheck.Test.make ~name:"Net.fate delays respect the effective link config"
    ~count:200
    QCheck.(
      quad small_int (int_range 0 100) (int_range 0 100) (int_range 0 100))
    (fun (seed, a, b, late_pct) ->
      let pid = Proc_id.of_int in
      let lo = Time.of_ms (1 + min a b / 10)
      and hi = Time.of_ms (1 + (max a b / 10)) in
      (* keep the override inside the global delta = 10ms *)
      let lo = Time.min lo (Time.of_ms 10) and hi = Time.min hi (Time.of_ms 10) in
      let late_prob = float_of_int late_pct /. 100.0 in
      let late_delay_max = Time.of_ms 60 in
      let net = Net.create Net.default_config (Rng.create seed) in
      Net.set_link net ~src:(pid 0) ~dst:(pid 1) ~delay_min:lo ~delay_max:hi
        ~late_prob ~late_delay_max ();
      let eff = Net.link_config net ~src:(pid 0) ~dst:(pid 1) in
      let ok = ref true in
      for _ = 1 to 100 do
        match Net.fate net ~src:(pid 0) ~dst:(pid 1) () with
        | Net.Deliver_after d ->
          let timely = d >= eff.Net.delay_min && d <= eff.Net.delay_max in
          let late = d > eff.Net.delta && d <= eff.Net.late_delay_max in
          if not (timely || late) then ok := false
        | Net.Dropped _ -> ok := false
      done;
      !ok)

let test_net_filter_partition_overlap () =
  (* regression: fate used to consult drop filters before the partition
     check, so a datagram that the partition was going to kill anyway
     burned a bounded filter's max_drops budget — a chaos plan arming
     "drop the next decision" during a partition found its filter
     already exhausted by the time the partition healed. Partitioned
     traffic must not touch filter budgets. *)
  let net = Net.create Net.default_config (Rng.create 7) in
  Net.add_filter net ~max_drops:1 ~name:"bounded" (fun ~src:_ ~dst:_ v ->
      v = 1);
  Net.set_partition net [ set_of [ 0 ]; set_of [ 1 ] ];
  let fate v =
    Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) v
  in
  (* matches the filter AND crosses the cut: the partition must claim it *)
  (match fate 1 with
  | Net.Dropped "partition" -> ()
  | Net.Dropped r -> Alcotest.failf "expected partition drop, got %s" r
  | Net.Deliver_after _ -> Alcotest.fail "cross-cut message delivered");
  check (Alcotest.list Alcotest.string) "budget untouched" [ "bounded" ]
    (Net.active_filters net);
  Net.heal net;
  (* healed: now the filter gets its shot, and spends its one drop *)
  (match fate 1 with
  | Net.Dropped "filter:bounded" -> ()
  | Net.Dropped r -> Alcotest.failf "expected filter drop, got %s" r
  | Net.Deliver_after _ -> Alcotest.fail "armed filter did not fire");
  check (Alcotest.list Alcotest.string) "budget now spent" []
    (Net.active_filters net);
  match fate 1 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "exhausted filter still matching"

let test_net_filter_exhausted_pruned () =
  let net = Net.create Net.default_config (Rng.create 6) in
  Net.add_filter net ~max_drops:1 ~name:"once" (fun ~src:_ ~dst:_ v -> v = 1);
  Net.add_filter net ~name:"sticky" (fun ~src:_ ~dst:_ v -> v = 2);
  check (Alcotest.list Alcotest.string) "installation order" [ "once"; "sticky" ]
    (Net.active_filters net);
  let fate v =
    Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) v
  in
  (match fate 1 with
  | Net.Dropped _ -> ()
  | Net.Deliver_after _ -> Alcotest.fail "bounded filter did not match");
  (* the single allowed drop is spent: the filter must be gone, not
     merely inert *)
  check (Alcotest.list Alcotest.string) "exhausted filter removed"
    [ "sticky" ] (Net.active_filters net);
  (match fate 1 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "exhausted filter still matching");
  Net.remove_filter net ~name:"sticky";
  check (Alcotest.list Alcotest.string) "removed by name" []
    (Net.active_filters net);
  (match fate 2 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "removed filter still matching");
  (* unknown names are ignored *)
  Net.remove_filter net ~name:"never-installed";
  (* a max_drops of 0 is never installed at all *)
  Net.add_filter net ~max_drops:0 ~name:"zero" (fun ~src:_ ~dst:_ _ -> true);
  check (Alcotest.list Alcotest.string) "zero-budget filter skipped" []
    (Net.active_filters net)

let test_net_filters () =
  let net = Net.create Net.default_config (Rng.create 5) in
  Net.add_filter net ~max_drops:2 ~name:"two"
    (fun ~src:_ ~dst:_ v -> v = 42);
  let fate v =
    Net.fate net ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) v
  in
  (match fate 42 with Net.Dropped r -> check Alcotest.string "reason" "filter:two" r | _ -> Alcotest.fail "not dropped");
  (match fate 7 with Net.Deliver_after _ -> () | _ -> Alcotest.fail "non-matching dropped");
  (match fate 42 with Net.Dropped _ -> () | _ -> Alcotest.fail "second not dropped");
  (match fate 42 with
  | Net.Deliver_after _ -> ()
  | Net.Dropped _ -> Alcotest.fail "filter did not disarm");
  Net.clear_filters net

(* ------------------------------------------------------------------ *)
(* Engine *)

type msg = Ping of int | Echo of int

let echo_automaton ~replies =
  {
    Engine.name = "echo";
    init = (fun ~self:_ ~n:_ ~clock:_ ~incarnation:_ -> ((), []));
    on_receive =
      (fun () ~clock:_ ~src msg ->
        match msg with
        | Ping k ->
          incr replies;
          ((), [ Engine.Send (src, Echo k) ])
        | Echo _ ->
          incr replies;
          ((), []));
    on_timer = (fun () ~clock:_ ~key:_ -> ((), []));
  }

let test_engine_message_roundtrip () =
  let replies = ref 0 in
  let engine = Engine.create Engine.default_config ~n:2 in
  let a = echo_automaton ~replies in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.add_process engine (Proc_id.of_int 1) a ~clock:Engine.ideal_clock ();
  Engine.inject engine (Proc_id.of_int 0) (Ping 0) |> ignore;
  (* the injected ping is echoed to self, then... self-src so Send goes to p0 *)
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.bool "some events processed" true (!replies > 0)

let timer_automaton ~fired =
  {
    Engine.name = "timer";
    init =
      (fun ~self:_ ~n:_ ~clock ~incarnation:_ ->
        ((), [ Engine.Set_timer { key = 1; at_clock = Time.add clock (Time.of_ms 10) } ]));
    on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
    on_timer =
      (fun () ~clock ~key ->
        fired := (key, clock) :: !fired;
        ((), []));
  }

let test_engine_timer_fires () =
  let fired = ref [] in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) (timer_automaton ~fired)
    ~clock:Engine.ideal_clock ();
  Engine.run engine ~until:(Time.of_sec 1);
  match !fired with
  | [ (1, at) ] ->
    if at < Time.of_ms 10 then Alcotest.fail "fired early";
    if at > Time.of_ms 12 then Alcotest.fail "fired too late"
  | _ -> Alcotest.failf "expected one firing, got %d" (List.length !fired)

let test_engine_timer_rearm_replaces () =
  let fired = ref [] in
  let a =
    {
      Engine.name = "rearm";
      init =
        (fun ~self:_ ~n:_ ~clock ~incarnation:_ ->
          ( (),
            [
              Engine.Set_timer { key = 1; at_clock = Time.add clock (Time.of_ms 10) };
              Engine.Set_timer { key = 1; at_clock = Time.add clock (Time.of_ms 30) };
            ] ));
      on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
      on_timer =
        (fun () ~clock ~key ->
          fired := (key, clock) :: !fired;
          ((), []));
    }
  in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "only the re-armed firing" 1 (List.length !fired);
  match !fired with
  | [ (_, at) ] -> if at < Time.of_ms 30 then Alcotest.fail "old arming fired"
  | _ -> ()

let test_engine_cancel_timer () =
  let fired = ref [] in
  let a =
    {
      Engine.name = "cancel";
      init =
        (fun ~self:_ ~n:_ ~clock ~incarnation:_ ->
          ( (),
            [
              Engine.Set_timer { key = 1; at_clock = Time.add clock (Time.of_ms 10) };
              Engine.Cancel_timer 1;
            ] ));
      on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
      on_timer =
        (fun () ~clock ~key ->
          fired := (key, clock) :: !fired;
          ((), []));
    }
  in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "cancelled" 0 (List.length !fired)

let test_engine_crash_recovery_incarnation () =
  let incarnations = ref [] in
  let a =
    {
      Engine.name = "inc";
      init =
        (fun ~self:_ ~n:_ ~clock:_ ~incarnation ->
          incarnations := incarnation :: !incarnations;
          ((), []));
      on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
      on_timer = (fun () ~clock:_ ~key:_ -> ((), []));
    }
  in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.crash_at engine (Time.of_ms 100) (Proc_id.of_int 0);
  Engine.recover_at engine (Time.of_ms 200) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_sec 1);
  check (Alcotest.list Alcotest.int) "incarnations" [ 1; 0 ] !incarnations;
  check Alcotest.bool "up after recovery" true
    (Engine.is_up engine (Proc_id.of_int 0))

let test_engine_crashed_drops_messages () =
  let replies = ref 0 in
  let engine = Engine.create Engine.default_config ~n:2 in
  let a = echo_automaton ~replies in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.add_process engine (Proc_id.of_int 1) a ~clock:Engine.ideal_clock ();
  Engine.crash_at engine (Time.of_ms 1) (Proc_id.of_int 1);
  Engine.inject_at engine (Time.of_ms 10) (Proc_id.of_int 1) (Ping 1);
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "no handling while down" 0 !replies;
  check Alcotest.bool "state erased" true
    (Engine.state_of engine (Proc_id.of_int 1) = None)

let test_engine_classify_counts () =
  let replies = ref 0 in
  let engine = Engine.create Engine.default_config ~n:2 in
  Engine.classify engine (function Ping _ -> "ping" | Echo _ -> "echo");
  let a = echo_automaton ~replies in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.add_process engine (Proc_id.of_int 1) a ~clock:Engine.ideal_clock ();
  Engine.inject engine (Proc_id.of_int 0) (Ping 3);
  Engine.run engine ~until:(Time.of_sec 1);
  let stats = Engine.stats engine in
  check Alcotest.bool "echo sent counted" true (Stats.count stats "sent:echo" >= 1)

let test_engine_broadcast_excludes_self () =
  let received = ref [] in
  let a =
    {
      Engine.name = "bcast";
      init =
        (fun ~self ~n:_ ~clock:_ ~incarnation:_ ->
          if Proc_id.to_int self = 0 then ((), [ Engine.Broadcast (Ping 9) ])
          else ((), []));
      on_receive =
        (fun () ~clock:_ ~src:_ msg ->
          (match msg with Ping k -> received := k :: !received | Echo _ -> ());
          ((), []));
      on_timer = (fun () ~clock:_ ~key:_ -> ((), []));
    }
  in
  let engine = Engine.create Engine.default_config ~n:3 in
  List.iter
    (fun i ->
      Engine.add_process engine (Proc_id.of_int i) a ~clock:Engine.ideal_clock ())
    [ 0; 1; 2 ];
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "two receivers" 2 (List.length !received)

let test_trace_recording () =
  let trace = Trace.create () in
  let replies = ref 0 in
  let engine = Engine.create Engine.default_config ~n:2 in
  Engine.classify engine (function Ping _ -> "ping" | Echo _ -> "echo");
  Engine.set_trace engine trace;
  let a = echo_automaton ~replies in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.add_process engine (Proc_id.of_int 1) a ~clock:Engine.ideal_clock ();
  Engine.inject engine (Proc_id.of_int 0) (Ping 1);
  Engine.crash_at engine (Time.of_ms 500) (Proc_id.of_int 1);
  Engine.recover_at engine (Time.of_ms 600) (Proc_id.of_int 1);
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.bool "echo sends recorded" true
    (Trace.count ~kind:"echo" trace >= 1);
  check Alcotest.bool "src filter" true
    (Trace.count ~kind:"echo" ~src:(Proc_id.of_int 0) trace >= 1);
  let crashes =
    List.filter
      (fun (e : Trace.entry) ->
        match e.Trace.event with Trace.Crashed _ -> true | _ -> false)
      (Trace.entries trace)
  in
  check Alcotest.int "crash recorded" 1 (List.length crashes);
  (* entries are time-ordered *)
  let times = List.map (fun (e : Trace.entry) -> e.Trace.at) (Trace.entries trace) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  check Alcotest.bool "ordered" true (sorted times)

let test_trace_capacity () =
  let trace = Trace.create ~capacity:5 () in
  for i = 0 to 9 do
    Trace.record trace (Time.of_ms i) (Trace.Crashed (Proc_id.of_int 0))
  done;
  check Alcotest.int "bounded" 5 (Trace.length trace);
  check Alcotest.int "discards counted" 5 (Trace.dropped_entries trace);
  (* oldest were discarded *)
  (match Trace.entries trace with
  | first :: _ -> check Alcotest.int "kept newest" (Time.of_ms 5) first.Trace.at
  | [] -> Alcotest.fail "empty");
  Trace.clear trace;
  check Alcotest.int "cleared" 0 (Trace.length trace)

let test_trace_between () =
  let trace = Trace.create () in
  List.iter
    (fun ms -> Trace.record trace (Time.of_ms ms) (Trace.Crashed (Proc_id.of_int 0)))
    [ 10; 20; 30; 40 ];
  check Alcotest.int "window" 2
    (List.length (Trace.between trace ~from:(Time.of_ms 15) ~until:(Time.of_ms 35)))

let test_engine_slow_scheduling () =
  (* with slow_prob = 1, every dispatch suffers a scheduling performance
     failure: reaction delays must exceed sigma *)
  let fired = ref [] in
  let cfg =
    {
      Engine.default_config with
      Engine.slow_prob = 1.0;
      slow_delay_max = Time.of_ms 5;
    }
  in
  let engine = Engine.create cfg ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) (timer_automaton ~fired)
    ~clock:Engine.ideal_clock ();
  Engine.run engine ~until:(Time.of_sec 1);
  match !fired with
  | [ (_, at) ] ->
    check Alcotest.bool "slower than sigma" true
      (at > Time.add (Time.of_ms 10) cfg.Engine.sigma)
  | _ -> Alcotest.fail "expected one firing"

let test_engine_config_validation () =
  let rejected cfg =
    match Engine.validate_config cfg with
    | Error _ -> (
      (* Engine.create must agree with the validator *)
      match Engine.create cfg ~n:1 with
      | exception Invalid_argument _ -> true
      | _ -> Alcotest.fail "create accepted a config validate rejects")
    | Ok () -> false
  in
  check Alcotest.bool "default ok" true
    (Engine.validate_config Engine.default_config = Ok ());
  check Alcotest.bool "sigma <= 0 rejected" true
    (rejected { Engine.default_config with Engine.sigma = Time.zero });
  check Alcotest.bool "sched_min < 0 rejected" true
    (rejected
       { Engine.default_config with Engine.sched_min = Time.of_ms (-1) });
  check Alcotest.bool "sched_min > sigma rejected" true
    (rejected { Engine.default_config with Engine.sched_min = Time.of_ms 2 });
  check Alcotest.bool "slow_prob > 1 rejected" true
    (rejected { Engine.default_config with Engine.slow_prob = 1.5 });
  check Alcotest.bool "slow_prob < 0 rejected" true
    (rejected { Engine.default_config with Engine.slow_prob = -0.1 });
  (* a "performance failure" no slower than a timely dispatch *)
  check Alcotest.bool "slow_delay_max <= sigma rejected" true
    (rejected
       {
         Engine.default_config with
         Engine.slow_prob = 0.5;
         slow_delay_max = Engine.default_config.Engine.sigma;
       });
  (* ... but slow_delay_max is irrelevant while slow_prob = 0 *)
  check Alcotest.bool "slow_delay_max ignored when slow off" true
    (Engine.validate_config
       { Engine.default_config with Engine.slow_delay_max = Time.zero }
    = Ok ())

let test_engine_set_slow_validation () =
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0)
    (timer_automaton ~fired:(ref []))
    ~clock:Engine.ideal_clock ();
  (match
     Engine.set_slow engine ~slow_prob:0.5
       ~slow_delay_max:Engine.default_config.Engine.sigma
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_slow accepted a degenerate pair");
  Engine.set_slow engine ~slow_prob:0.5 ~slow_delay_max:(Time.of_ms 5);
  Engine.reset_slow engine

let test_engine_crash_before_start () =
  (* crashing a process before its registration-time start fires must
     cancel the start: the process stays down, its init never runs,
     until an explicit recovery *)
  let incarnations = ref [] in
  let a =
    {
      Engine.name = "late-start";
      init =
        (fun ~self:_ ~n:_ ~clock:_ ~incarnation ->
          incarnations := incarnation :: !incarnations;
          ((), []));
      on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
      on_timer = (fun () ~clock:_ ~key:_ -> ((), []));
    }
  in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock
    ~start:(Time.of_ms 100) ();
  Engine.crash_at engine (Time.of_ms 50) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_ms 500);
  check (Alcotest.list Alcotest.int) "init never ran" [] !incarnations;
  check Alcotest.bool "still down past its start time" false
    (Engine.is_up engine (Proc_id.of_int 0));
  Engine.recover_at engine (Time.of_ms 600) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_sec 1);
  check (Alcotest.list Alcotest.int) "recovery runs init once" [ 1 ]
    !incarnations;
  check Alcotest.bool "up after recovery" true
    (Engine.is_up engine (Proc_id.of_int 0))

let inc_automaton incarnations =
  {
    Engine.name = "inc";
    init =
      (fun ~self:_ ~n:_ ~clock:_ ~incarnation ->
        incarnations := incarnation :: !incarnations;
        ((), []));
    on_receive = (fun () ~clock:_ ~src:_ _ -> ((), []));
    on_timer = (fun () ~clock:_ ~key:_ -> ((), []));
  }

let test_engine_double_crash_is_noop () =
  (* a fault plan may crash an already-down process; the second crash
     must neither bump the incarnation again nor count as a new crash *)
  let incarnations = ref [] in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) (inc_automaton incarnations)
    ~clock:Engine.ideal_clock ();
  Engine.crash_at engine (Time.of_ms 100) (Proc_id.of_int 0);
  Engine.crash_at engine (Time.of_ms 150) (Proc_id.of_int 0);
  Engine.recover_at engine (Time.of_ms 200) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "one effective crash" 1
    (Stats.count (Engine.stats engine) "crashes");
  check (Alcotest.list Alcotest.int) "incarnation bumped once" [ 1; 0 ]
    !incarnations;
  check Alcotest.bool "up after recovery" true
    (Engine.is_up engine (Proc_id.of_int 0))

let test_engine_double_recover_is_noop () =
  (* symmetrically, recovering an already-up process is idempotent:
     init must not re-run and no recovery is counted *)
  let incarnations = ref [] in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) (inc_automaton incarnations)
    ~clock:Engine.ideal_clock ();
  Engine.crash_at engine (Time.of_ms 100) (Proc_id.of_int 0);
  Engine.recover_at engine (Time.of_ms 200) (Proc_id.of_int 0);
  Engine.recover_at engine (Time.of_ms 300) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_sec 1);
  check Alcotest.int "one effective recovery" 1
    (Stats.count (Engine.stats engine) "recoveries");
  check (Alcotest.list Alcotest.int) "init ran exactly twice" [ 1; 0 ]
    !incarnations

let test_engine_recover_never_started_rejected () =
  (* recovering a process that was never started (registered with a
     future start that never fired, and never crashed) is a plan bug,
     not a no-op: it must be rejected loudly *)
  let incarnations = ref [] in
  let engine = Engine.create Engine.default_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) (inc_automaton incarnations)
    ~clock:Engine.ideal_clock ~start:(Time.of_sec 2) ();
  Engine.recover_at engine (Time.of_ms 100) (Proc_id.of_int 0);
  (match Engine.run engine ~until:(Time.of_sec 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "recover of a never-started process was accepted");
  check (Alcotest.list Alcotest.int) "init never ran" [] !incarnations

let test_engine_determinism () =
  let run () =
    let fired = ref [] in
    let engine =
      Engine.create { Engine.default_config with Engine.seed = 99 } ~n:1
    in
    Engine.add_process engine (Proc_id.of_int 0) (timer_automaton ~fired)
      ~clock:Engine.ideal_clock ();
    Engine.run engine ~until:(Time.of_sec 1);
    !fired
  in
  check Alcotest.bool "identical runs" true (run () = run ())

let () =
  Alcotest.run "tasim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "scale" `Quick test_time_scale;
          Alcotest.test_case "pp" `Quick test_time_pp;
          qcheck prop_time_scale_monotone;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          qcheck prop_rng_int_bounds;
          qcheck prop_rng_float_unit;
          qcheck prop_rng_uniform_time;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "growth" `Quick test_heap_grows;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "min_time/pop_min" `Quick test_heap_pop_min;
          qcheck prop_heap_sorted;
          qcheck prop_heap_stable_interleaved;
        ] );
      ( "proc",
        [
          Alcotest.test_case "ring" `Quick test_proc_ring;
          Alcotest.test_case "invalid" `Quick test_proc_id_invalid;
          Alcotest.test_case "set ring" `Quick test_proc_set_ring;
          Alcotest.test_case "majority" `Quick test_proc_set_majority;
          qcheck prop_proc_set_ops_model;
          qcheck prop_successor_in_member;
        ] );
      ( "clock",
        [
          Alcotest.test_case "reading" `Quick test_clock_reading;
          qcheck prop_clock_inverse;
          qcheck prop_clock_monotone;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty_summary;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "interned counters" `Quick test_stats_interned;
          Alcotest.test_case "merge after interning" `Quick
            test_stats_merge_interned;
          qcheck prop_stats_percentile_order;
        ] );
      ( "net",
        [
          Alcotest.test_case "config validation" `Quick test_net_config_validation;
          Alcotest.test_case "delay bounds" `Quick test_net_delays_within_bounds;
          Alcotest.test_case "omission rate" `Quick test_net_omission_rate;
          Alcotest.test_case "late > delta" `Quick test_net_late_messages_exceed_delta;
          Alcotest.test_case "partitions" `Quick test_net_partition;
          Alcotest.test_case "unlisted procs are singleton blocks" `Quick
            test_net_partition_unlisted_singletons;
          Alcotest.test_case "per-link overrides" `Quick test_net_link_overrides;
          Alcotest.test_case "per-link validation" `Quick
            test_net_link_validation;
          qcheck prop_net_fate_delay_bounds;
          Alcotest.test_case "partition shields filter budgets" `Quick
            test_net_filter_partition_overlap;
          Alcotest.test_case "filters" `Quick test_net_filters;
          Alcotest.test_case "exhausted filter pruned" `Quick
            test_net_filter_exhausted_pruned;
        ] );
      ( "engine",
        [
          Alcotest.test_case "roundtrip" `Quick test_engine_message_roundtrip;
          Alcotest.test_case "timer fires" `Quick test_engine_timer_fires;
          Alcotest.test_case "timer rearm" `Quick test_engine_timer_rearm_replaces;
          Alcotest.test_case "timer cancel" `Quick test_engine_cancel_timer;
          Alcotest.test_case "crash/recovery" `Quick test_engine_crash_recovery_incarnation;
          Alcotest.test_case "down drops msgs" `Quick test_engine_crashed_drops_messages;
          Alcotest.test_case "classify" `Quick test_engine_classify_counts;
          Alcotest.test_case "broadcast" `Quick test_engine_broadcast_excludes_self;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "slow scheduling" `Quick test_engine_slow_scheduling;
          Alcotest.test_case "config validation" `Quick
            test_engine_config_validation;
          Alcotest.test_case "set_slow validation" `Quick
            test_engine_set_slow_validation;
          Alcotest.test_case "crash before start" `Quick
            test_engine_crash_before_start;
          Alcotest.test_case "double crash no-op" `Quick
            test_engine_double_crash_is_noop;
          Alcotest.test_case "double recover no-op" `Quick
            test_engine_double_recover_is_noop;
          Alcotest.test_case "recover never-started rejected" `Quick
            test_engine_recover_never_started_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "recording" `Quick test_trace_recording;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "between" `Quick test_trace_between;
        ] );
    ]
