(* Live-runtime smoke: the acceptance scenario of the UDP runtime, run
   for real on localhost sockets and the wall clock.

   Five members form a group over UDP; the current decider is killed
   (socket closed, state dropped) and the survivors must install a
   4-member view via the single-failure election; the killed member is
   then restarted and must rejoin — announcing its bumped formation
   epoch from stable storage — ending in a 5-member view with a
   strictly later group id. Every phase has a hard wall-clock bound so
   a hung run fails rather than wedging CI. *)

open Tasim
open Broadcast
open Timewheel
open Runtime

let phase_timeout = Time.of_sec 30

let fail_with fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "live smoke: FAIL: %s@." msg;
      exit 1)
    fmt

let pp_view ppf (v : Live.view) =
  Fmt.pf ppf "%a %a installed %a #%a" Time.pp v.Live.at Proc_id.pp v.Live.proc
    Proc_set.pp v.Live.group Group_id.pp v.Live.group_id

let () =
  let n = 5 in
  let cfg = Live.config ~n ~base_port:47800 () in
  let recorder = Live.recorder () in
  let clock, cluster =
    try Live.in_process cfg ~recorder ()
    with Unix.Unix_error (e, _, _) ->
      Fmt.epr "live smoke: SKIP: cannot open UDP sockets (%s)@."
        (Unix.error_message e);
      exit 0
  in
  Cluster.start cluster;
  let until pred = Cluster.run_until cluster
      ~deadline:(Time.add (Clock.now clock) phase_timeout) pred
  in

  (* phase 1: the five members form the initial group over real UDP *)
  let full = Proc_set.full ~n in
  let formed () =
    match Live.agreed_view cluster with
    | Some (group, _) -> Proc_set.equal group full
    | None -> false
  in
  if not (until formed) then
    fail_with "initial 5-member group did not form within %a (views: %a)"
      Time.pp phase_timeout
      Fmt.(list ~sep:comma pp_view)
      recorder.Live.views;
  let _, gid5 = Option.get (Live.agreed_view cluster) in
  Fmt.pr "live smoke: formed %a #%a at %a@." Proc_set.pp full Group_id.pp gid5
    Time.pp (Clock.now clock);

  (* phase 2: kill the decider *)
  let victim =
    match Live.decider cluster with
    | Some p -> p
    | None -> fail_with "no member holds the decider role"
  in
  Node.kill (Cluster.node cluster victim);
  Fmt.pr "live smoke: killed decider %a at %a@." Proc_id.pp victim Time.pp
    (Clock.now clock);

  (* phase 3: the survivors elect and install the 4-member view *)
  let survivors = Proc_set.remove victim full in
  let excluded () =
    match Live.agreed_view cluster with
    | Some (group, _) -> Proc_set.equal group survivors
    | None -> false
  in
  if not (until excluded) then
    fail_with "survivors did not install %a within %a (views: %a)"
      Proc_set.pp survivors Time.pp phase_timeout
      Fmt.(list ~sep:comma pp_view)
      recorder.Live.views;
  let _, gid4 = Option.get (Live.agreed_view cluster) in
  if not (Group_id.later gid4 ~than:gid5) then
    fail_with "4-member view id %a not later than %a" Group_id.pp gid4
      Group_id.pp gid5;
  Fmt.pr "live smoke: survivors installed %a #%a at %a@." Proc_set.pp
    survivors Group_id.pp gid4 Time.pp (Clock.now clock);

  (* phase 4: restart the victim; stable storage makes it announce a
     bumped formation epoch and rejoin *)
  Node.restart (Cluster.node cluster victim);
  let rejoined () =
    match Live.agreed_view cluster with
    | Some (group, gid) ->
      Proc_set.equal group full && Group_id.later gid ~than:gid4
    | None -> false
  in
  if not (until rejoined) then
    fail_with "killed member did not rejoin within %a (views: %a)" Time.pp
      phase_timeout
      Fmt.(list ~sep:comma pp_view)
      recorder.Live.views;
  let _, gid_final = Option.get (Live.agreed_view cluster) in
  let victim_node = Cluster.node cluster victim in
  (match Live.member_of victim_node with
  | None -> fail_with "restarted member has no member state"
  | Some m ->
    if Member.form_epoch m < 1 then
      fail_with
        "restarted member forgot its epoch (form_epoch %d, expected >= 1)"
        (Member.form_epoch m));
  if Node.incarnation victim_node <> 1 then
    fail_with "expected incarnation 1, got %d" (Node.incarnation victim_node);
  Fmt.pr
    "live smoke: %a rejoined (form epoch %d); full group %a #%a at %a@."
    Proc_id.pp victim
    (Option.fold ~none:(-1) ~some:Member.form_epoch
       (Live.member_of victim_node))
    Proc_set.pp full Group_id.pp gid_final Time.pp (Clock.now clock);

  (* a quick end-to-end broadcast sanity check on the rejoined group *)
  Live.submit (Cluster.node cluster (Proc_id.of_int 0))
    ~semantics:Semantics.total_strong "live-hello";
  let delivered_everywhere () =
    List.length
      (List.filter
         (fun (_, payload) -> payload = "live-hello")
         recorder.Live.delivered)
    = n
  in
  if not (until delivered_everywhere) then
    fail_with "update not delivered by all %d members" n;
  Fmt.pr "live smoke: update delivered by all %d members@." n;

  (* phase 6: the live mirror of the asym-slow-link topology scenario —
     one directed link impaired (delay past delta with jitter and
     loss) via the transport shim; the group must stay formed and a
     broadcast must still reach everyone through the degraded link *)
  let a = Proc_id.of_int ((Proc_id.to_int victim + 1) mod n) in
  let b = Proc_id.of_int ((Proc_id.to_int victim + 2) mod n) in
  Transport.impair
    (Node.transport (Cluster.node cluster a))
    ~dst:b ~delay:(Time.of_ms 15) ~jitter:(Time.of_ms 5) ~drop:0.2
    ~now:(fun () -> Clock.now clock)
    ();
  Fmt.pr "live smoke: impaired link %a->%a (15ms+5ms jitter, 20%% loss)@."
    Proc_id.pp a Proc_id.pp b;
  Live.submit (Cluster.node cluster a) ~semantics:Semantics.total_strong
    "slow-link-hello";
  let slow_delivered () =
    List.length
      (List.filter
         (fun (_, payload) -> payload = "slow-link-hello")
         recorder.Live.delivered)
    = n
  in
  if not (until slow_delivered) then
    fail_with "update not delivered by all %d members over the impaired link"
      n;
  (match Live.agreed_view cluster with
  | Some (group, _) when Proc_set.equal group full -> ()
  | Some (group, _) ->
    fail_with "group shrank under the impaired link: %a" Proc_set.pp group
  | None -> fail_with "no agreed view under the impaired link");
  Transport.clear_impairments (Node.transport (Cluster.node cluster a));
  Fmt.pr "live smoke: impaired-link broadcast delivered, group intact@.";

  let total name =
    List.fold_left
      (fun acc node -> acc + Stats.count (Node.stats node) name)
      0 (Cluster.nodes cluster)
  in
  Fmt.pr
    "live smoke: PASS (%d datagrams sent, %d received, %d decode drops)@."
    (total "live:sent") (total "live:recv")
    (total "live:drop:truncated" + total "live:drop:bad-magic"
   + total "live:drop:bad-version"
    + total "live:drop:length-mismatch"
    + total "live:drop:malformed")
