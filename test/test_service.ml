(* Tests of the user-facing Service API surface: observation plumbing,
   fault-injection helpers, trace recording, inspection. *)

open Tasim
open Timewheel
open Broadcast

let check = Alcotest.check
let pid = Proc_id.of_int

let make ?(seed = 2) ~n () = Harness.Run.service ~seed ~n ()

let test_on_view_fires_for_every_member () =
  let svc = make ~n:5 () in
  let count = ref 0 in
  Service.on_view svc (fun _p _v -> incr count);
  let _ = Harness.Run.settle svc in
  check Alcotest.int "five formation installs" 5 !count

let test_on_delivery_payloads () =
  let svc = make ~n:5 () in
  let got = ref [] in
  Service.on_delivery svc (fun proc ~at:_ proposal ~ordinal ->
      if Proc_id.equal proc (pid 3) then
        got := (proposal.Proposal.payload, ordinal) :: !got);
  let svc = Harness.Run.settle svc in
  Service.submit svc (pid 0) ~semantics:Semantics.total_strong 42;
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 1));
  match !got with
  | [ (42, Some _) ] -> ()
  | _ -> Alcotest.failf "expected one ordered delivery, got %d" (List.length !got)

let test_submit_before_formation_dropped () =
  let svc = make ~n:5 () in
  let delivered = ref 0 in
  Service.on_delivery svc (fun _ ~at:_ _ ~ordinal:_ -> incr delivered);
  (* submit while everyone is still in the join state *)
  Service.submit_at svc (Time.of_ms 10) (pid 0)
    ~semantics:Semantics.unordered_weak 1;
  Service.run svc ~until:(Time.of_sec 2);
  check Alcotest.int "nothing delivered" 0 !delivered

let test_views_installed_ordering () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  Service.crash_at svc (Time.add (Service.now svc) (Time.of_ms 100)) (pid 1);
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 3));
  let views = Service.views_installed svc in
  let times = List.map (fun (_, v) -> v.Service.at) views in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Time.compare a b <= 0 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "time ordered" true (sorted times);
  check Alcotest.bool "two generations" true
    (List.exists (fun (_, v) -> Group_id.seq v.Service.group_id = 1) views)

let test_current_view_and_member_state () =
  let svc = make ~n:5 () in
  check Alcotest.bool "no view before formation" true
    (Service.current_view svc (pid 0) = None);
  let svc = Harness.Run.settle svc in
  (match Service.current_view svc (pid 0) with
  | Some v -> check Alcotest.int "full group" 5 (Proc_set.cardinal v.Service.group)
  | None -> Alcotest.fail "expected a view");
  match Service.member_state svc (pid 0) with
  | Some s ->
    check Alcotest.bool "failure-free" true
      (Creator_state.kind_of (Member.creator_state s)
      = Creator_state.KFailure_free)
  | None -> Alcotest.fail "state missing"

let test_drop_control_filter () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  (* drop ALL decisions from p0 to p1 for a while: p1 must still follow
     the group via other members' decisions *)
  Service.drop_control svc ~max_drops:30 ~name:"p0-p1" ~kind:"decision"
    ~src:(Some (pid 0)) ~dst:(Some (pid 1)) ();
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 3));
  let stats = Service.stats svc in
  check Alcotest.bool "filter dropped some" true
    (Stats.count stats "drop_reason:filter:p0-p1" > 0);
  match Service.agreed_view svc with
  | Some v -> check Alcotest.int "group survives" 5 (Proc_set.cardinal v.Service.group)
  | None -> Alcotest.fail "no agreement"

let test_enable_trace_records () =
  let svc = make ~n:5 () in
  let trace = Service.enable_trace svc in
  let svc = Harness.Run.settle svc in
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 1));
  check Alcotest.bool "decisions traced" true
    (Trace.count ~kind:"decision" trace > 0);
  check Alcotest.bool "joins traced" true (Trace.count ~kind:"join" trace > 0);
  (* filters compose with the trace: drops appear as Dropped entries *)
  Service.crash_at svc (Service.now svc) (pid 2);
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 1));
  let crashes =
    List.filter
      (fun (e : Trace.entry) ->
        match e.Trace.event with Trace.Crashed _ -> true | _ -> false)
      (Trace.entries trace)
  in
  check Alcotest.int "crash traced" 1 (List.length crashes)

let test_app_state_accessor () =
  let svc = make ~n:3 () in
  let svc = Harness.Run.settle svc in
  Service.submit svc (pid 0) ~semantics:Semantics.total_strong 7;
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 1));
  (match Service.app_state svc (pid 2) with
  | Some [ 7 ] -> ()
  | Some l -> Alcotest.failf "unexpected log of %d entries" (List.length l)
  | None -> Alcotest.fail "no app state");
  Service.crash_at svc (Service.now svc) (pid 2);
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_ms 100));
  check Alcotest.bool "down member has no app state" true
    (Service.app_state svc (pid 2) = None)

let test_agreed_view_none_during_election () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  (* freeze the network completely: everyone will end up in n-failure
     and, being fail-aware, nobody counts as up to date *)
  Service.partition_at svc (Service.now svc)
    [
      Proc_set.singleton (pid 0);
      Proc_set.singleton (pid 1);
      Proc_set.singleton (pid 2);
      Proc_set.singleton (pid 3);
      Proc_set.singleton (pid 4);
    ];
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 3));
  check Alcotest.bool "total partition: no up-to-date view" true
    (Service.agreed_view svc = None)

let () =
  Alcotest.run "service"
    [
      ( "observation",
        [
          Alcotest.test_case "view probes" `Quick test_on_view_fires_for_every_member;
          Alcotest.test_case "delivery probes" `Quick test_on_delivery_payloads;
          Alcotest.test_case "views ordering" `Quick test_views_installed_ordering;
        ] );
      ( "client",
        [
          Alcotest.test_case "submit pre-formation" `Quick
            test_submit_before_formation_dropped;
          Alcotest.test_case "app state" `Quick test_app_state_accessor;
        ] );
      ( "inspection",
        [
          Alcotest.test_case "current view / state" `Quick
            test_current_view_and_member_state;
          Alcotest.test_case "agreed view fail-aware" `Quick
            test_agreed_view_none_during_election;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "drop_control" `Quick test_drop_control_filter;
          Alcotest.test_case "trace" `Quick test_enable_trace_records;
        ] );
    ]
