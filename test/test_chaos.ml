(* Tests for the chaos fault-plan fuzzer (lib/chaos): plan generation
   determinism, JSON artifact round-trips, shrinking (ddmin and the
   parameter pass, both pure and end-to-end against a deliberately
   broken invariant checker), the fixed-seed smoke sweep, replay of
   the two closed counterexample artifacts (chaos-11, chaos-17), and
   regressions for bugs the harness found. *)

open Tasim
module Plan = Chaos.Plan
module Runner = Chaos.Runner
module Fuzz = Chaos.Fuzz
module Shrink = Chaos.Shrink

let check = Alcotest.check
let plan_str p = Fmt.str "%a" Plan.pp p

(* ------------------------------------------------------------------ *)
(* plans *)

let test_plan_generation_deterministic () =
  let p1 = Plan.generate ~seed:7 ~n:5 ~ops:8 in
  let p2 = Plan.generate ~seed:7 ~n:5 ~ops:8 in
  check Alcotest.string "same seed, same plan" (plan_str p1) (plan_str p2);
  let p3 = Plan.generate ~seed:8 ~n:5 ~ops:8 in
  check Alcotest.bool "different seed, different plan" true
    (plan_str p1 <> plan_str p3);
  check Alcotest.int "requested op count" 8 (List.length p1.Plan.ops);
  List.iter
    (fun op ->
      check Alcotest.bool "op starts within horizon" true
        (Plan.op_time op <= Plan.horizon))
    p1.Plan.ops

(* one op of every kind, with every optional field exercised *)
let every_op_plan =
  {
    Plan.seed = 1;
    n = 5;
    ops =
      [
        Plan.Crash { at = Time.of_ms 100; proc = 2 };
        Plan.Recover { at = Time.of_ms 200; proc = 2 };
        Plan.Partition { at = Time.of_ms 300; block = [ 0; 1 ] };
        Plan.Heal { at = Time.of_ms 400 };
        Plan.Omission_burst
          { at = Time.of_ms 500; until = Time.of_ms 600; prob = 0.25; seed = 99 };
        Plan.Filter_window
          {
            at = Time.of_ms 700;
            until = Time.of_ms 800;
            kind = "decision";
            src = Some 1;
            dst = None;
          };
        Plan.Slow_window
          {
            at = Time.of_ms 900;
            until = Time.of_sec 1;
            prob = 0.5;
            delay_max = Time.of_ms 5;
          };
        Plan.Slow_member
          {
            at = Time.of_ms 1000;
            until = Time.of_ms 1050;
            proc = 4;
            prob = 0.5;
            delay_max = Time.of_ms 10;
          };
        Plan.Storage_fault
          {
            at = Time.of_ms 1100;
            until = Time.of_ms 1200;
            proc = Some 3;
            fault = Storage.Store.Torn_write;
          };
        Plan.Storage_fault
          {
            at = Time.of_ms 1300;
            until = Time.of_ms 1400;
            proc = None;
            fault = Storage.Store.Lost_flush;
          };
        Plan.Link_window
          {
            at = Time.of_ms 1500;
            until = Time.of_ms 1700;
            src = Some 0;
            dst = None;
            delay_min = Time.of_ms 8;
            delay_max = Time.of_ms 10;
            omission_prob = 0.1;
            late_prob = 0.3;
            late_delay_max = Time.of_ms 40;
          };
      ];
  }

let test_plan_json_roundtrip () =
  let roundtrip p =
    (* through the JSON tree and through the printed string *)
    (match Plan.of_json (Plan.to_json p) with
    | Error e -> Alcotest.failf "of_json: %s" e
    | Ok p' -> check Alcotest.string "tree round-trip" (plan_str p) (plan_str p'));
    let s = Harness.Bench_json.to_string (Plan.to_json p) in
    match Harness.Bench_json.of_string s with
    | Error e -> Alcotest.failf "of_string: %s" e
    | Ok json -> (
      match Plan.of_json json with
      | Error e -> Alcotest.failf "of_json after print: %s" e
      | Ok p' ->
        check Alcotest.string "string round-trip" (plan_str p) (plan_str p');
        check Alcotest.bool "structural equality" true (p = p'))
  in
  roundtrip every_op_plan;
  roundtrip (Plan.generate ~seed:123 ~n:5 ~ops:8);
  check Alcotest.bool "garbage rejected" true
    (match Plan.of_json (Harness.Bench_json.Obj [ ("seed", Harness.Bench_json.Int 1) ]) with
    | Error _ -> true
    | Ok _ -> false)

let test_plan_file_roundtrip () =
  let file = Filename.temp_file "chaos-plan" ".json" in
  Plan.save file every_op_plan;
  (match Plan.load file with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok p ->
    check Alcotest.string "file round-trip" (plan_str every_op_plan) (plan_str p));
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* shrinking *)

let test_shrink_ddmin () =
  let violates l = List.mem 3 l && List.mem 7 l in
  Shrink.reset_probes ();
  check
    (Alcotest.list Alcotest.int)
    "1-minimal, order preserved" [ 3; 7 ]
    (Shrink.minimize ~violates [ 1; 3; 5; 7; 9 ]);
  check Alcotest.bool "oracle consulted" true (Shrink.probes () > 0);
  check
    (Alcotest.list Alcotest.int)
    "non-violating input unchanged" [ 1; 2 ]
    (Shrink.minimize ~violates:(fun _ -> false) [ 1; 2 ]);
  check
    (Alcotest.list Alcotest.int)
    "empty input" []
    (Shrink.minimize ~violates [])

let test_shrink_params () =
  (* halving candidates over ints: the pass must keep halving an op as
     long as the list still violates, then move on *)
  let candidates n = if n > 1 then [ n / 2 ] else [] in
  let violates l = List.exists (fun x -> x >= 4) l in
  check
    (Alcotest.list Alcotest.int)
    "greedy halving to the violation floor" [ 4; 1 ]
    (Shrink.shrink_params ~violates ~candidates [ 16; 3 ]);
  check
    (Alcotest.list Alcotest.int)
    "non-violating input unchanged" [ 2; 3 ]
    (Shrink.shrink_params ~violates ~candidates [ 2; 3 ]);
  check
    (Alcotest.list Alcotest.int)
    "empty input" []
    (Shrink.shrink_params ~violates ~candidates [])

let test_plan_shrink_op_strictly_smaller () =
  (* every candidate an op proposes must be strictly smaller in some
     parameter and identical in kind, or shrink_params need not
     terminate *)
  List.iter
    (fun op ->
      List.iter
        (fun op' ->
          check Alcotest.bool "candidate differs from the op" true (op' <> op);
          check Alcotest.bool "same time" true
            (Time.equal (Plan.op_time op') (Plan.op_time op)))
        (Plan.shrink_op op))
    every_op_plan.Plan.ops;
  (* fixpoint: repeatedly adopting the first candidate terminates *)
  let rec depth op k =
    if k > 64 then Alcotest.fail "shrink_op does not converge"
    else match Plan.shrink_op op with [] -> () | op' :: _ -> depth op' (k + 1)
  in
  List.iter (fun op -> depth op 0) every_op_plan.Plan.ops

(* A deliberately broken invariant checker: flags any down process.
   Every plan containing a crash "violates" as soon as the exclusion
   view installs, so shrinking must strip the noise ops and keep
   exactly the crash — the end-to-end path the real counterexamples
   take (ISSUE acceptance: seeded violation -> minimal op list ->
   replay from JSON artifact). *)
let down_check svc =
  let engine = Timewheel.Service.engine svc in
  let n = Engine.n engine in
  if List.for_all (fun p -> Engine.is_up engine p) (Proc_id.all ~n) then []
  else
    [
      {
        Timewheel.Invariant.property = "no-downtime";
        detail = "some process is down";
      };
    ]

let test_broken_checker_shrinks_and_replays () =
  let plan =
    {
      Plan.seed = 11;
      n = 5;
      ops =
        [
          Plan.Partition { at = Time.of_ms 200; block = [ 0; 1; 2 ] };
          Plan.Heal { at = Time.of_ms 400 };
          Plan.Crash { at = Time.of_ms 600; proc = 1 };
          Plan.Recover { at = Time.of_sec 2; proc = 1 };
        ];
    }
  in
  let outcome = Runner.run ~check:down_check plan in
  check Alcotest.bool "full plan violates" false (Runner.ok outcome);
  let shrunk = Runner.minimize ~check:down_check plan in
  (match shrunk.Plan.ops with
  | [ Plan.Crash { proc = 1; _ } ] -> ()
  | ops ->
    Alcotest.failf "expected the minimal plan [crash p1], got %d op(s): %a"
      (List.length ops) Plan.pp shrunk);
  (* the artifact replays to the same verdict *)
  let file = Filename.temp_file "chaos-shrunk" ".json" in
  Plan.save file shrunk;
  (match Plan.load file with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok loaded ->
    check Alcotest.string "artifact round-trip" (plan_str shrunk)
      (plan_str loaded);
    check Alcotest.bool "replay reproduces the violation" false
      (Runner.ok (Runner.run ~check:down_check loaded)));
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* runner outcomes pinned by handcrafted plans *)

(* Regression for the reconfiguration candidate-selection fix in
   [Member.try_reconfig_create]: after [crash p2] the group is
   {p0 p1 p3 p4}; isolating p3 shrinks it to {p0 p1 p4}; repartitioning
   around p0 reconnects the stale ex-member p3 with p1 and p4 just as
   they enter the n-failure election. p3's reconfig stream contaminates
   the heard-set, and electing "all of the heard-set" (the old reading
   of the paper's rule) can never succeed because p3 is outside the
   group — the election deadlocks forever. Choosing the new group as
   heard-set intersected with the current group converges. *)
let test_stale_member_cannot_veto_election () =
  let plan =
    {
      Plan.seed = 77;
      n = 5;
      ops =
        [
          Plan.Crash { at = Time.of_ms 500; proc = 2 };
          Plan.Partition { at = Time.of_ms 1500; block = [ 3 ] };
          Plan.Partition { at = Time.of_ms 3000; block = [ 0 ] };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "no violation" true (Runner.ok outcome)

(* A plan that crashes the newest view down to a minority used to leave
   the service blocked for good (recovery was amnesiac, so the runner
   waived convergence as the paper's fail-safe answer). With stable
   storage the crashed members recover their formation epochs, the
   epilogue's mass recovery re-forms at a higher epoch, and the plan
   must now fully converge — the waiver is gone from the runner. *)
(* The slow-member op end to end through the runner: one sick machine
   for two seconds must at worst cause maskable wrong suspicions — the
   team reconverges and no membership invariant breaks. *)
let test_slow_member_plan_converges () =
  let plan =
    {
      Plan.seed = 21;
      n = 5;
      ops =
        [
          Plan.Slow_member
            {
              at = Time.of_ms 500;
              until = Time.of_ms 2500;
              proc = 3;
              prob = 0.5;
              delay_max = Time.of_ms 20;
            };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "no violation" true (Runner.ok outcome)

(* The scenario adaptive suspicion exists for: one slow member whose
   inbound decisions keep getting late-rejected. With the fixed 2D
   deadline the slow member wrongly suspects its timely peers; with
   Lifeguard-style local health the late rejections stretch its own
   deadline instead, and those false suspicions disappear. (Timely
   members may still rightly suspect the slow member — a performance
   failure is a failure in the timed model — so only suspicions
   {e emitted by} the slow member count as false here.) *)
let slow = Proc_id.of_int 3

let slow_member_false_suspicions ~adaptive =
  let params = Timewheel.Params.make ~n:5 ~adaptive_suspicion:adaptive () in
  let svc = Harness.Run.service ~seed:5 ~params ~n:5 () in
  let suspicions = ref 0 in
  Timewheel.Service.on_obs svc (fun _at proc obs ->
      match obs with
      | Timewheel.Member.Suspected _ when Proc_id.equal proc slow ->
        incr suspicions
      | _ -> ());
  let svc = Harness.Run.settle svc in
  let engine = Timewheel.Service.engine svc in
  Engine.set_slow_proc engine ~proc:slow ~prob:0.5 ~delay_max:(Time.of_ms 20);
  Timewheel.Service.run svc
    ~until:(Time.add (Timewheel.Service.now svc) (Time.of_sec 5));
  !suspicions

let test_slow_member_adaptive_contrast () =
  let fixed = slow_member_false_suspicions ~adaptive:false in
  let adaptive = slow_member_false_suspicions ~adaptive:true in
  check Alcotest.bool
    (Fmt.str "fixed 2D deadline wrongly suspects (%d)" fixed)
    true (fixed > 0);
  check Alcotest.int "adaptive suspicion masks the slow member" 0 adaptive

(* The link-window op end to end: one direction of one link degraded to
   the delta edge with omission and lateness for two seconds. The group
   must mask or reconverge, and the outcome must carry the convergence
   metrics the topology bench series aggregates. *)
let test_link_window_plan_converges () =
  let plan =
    {
      Plan.seed = 13;
      n = 5;
      ops =
        [
          Plan.Link_window
            {
              at = Time.of_ms 500;
              until = Time.of_ms 2500;
              src = Some 0;
              dst = Some 1;
              delay_min = Time.of_ms 9;
              delay_max = Time.of_ms 10;
              omission_prob = 0.2;
              late_prob = 0.5;
              late_delay_max = Time.of_ms 40;
            };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "no violation" true (Runner.ok outcome);
  check Alcotest.bool "formation time recorded" true
    (Time.compare outcome.Runner.formed_in Time.zero > 0);
  check Alcotest.bool "reconvergence time recorded" true
    (Option.is_some outcome.Runner.reconverged_in)

let test_majority_loss_recovers_via_epoch_bump () =
  let plan =
    {
      Plan.seed = 33;
      n = 5;
      ops =
        [
          Plan.Crash { at = Time.of_ms 500; proc = 2 };
          Plan.Partition { at = Time.of_ms 1500; block = [ 3 ] };
          Plan.Crash { at = Time.of_ms 3000; proc = 4 };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "converges after recovery, no violation" true
    (Runner.ok outcome)

(* ------------------------------------------------------------------ *)
(* the fixed-seed smoke sweep *)

(* The sweep is a pure function of (seed, plans, n, ops). Seed 1 is
   the suite's fixed seed. Its 20 plans used to surface two genuine
   protocol counterexamples — plan #11 (amnesiac epoch fork after a
   mass crash) and plan #17 (wrongly-suspected process deaf to the
   reconfiguration stream) — both closed by the stable-storage epoch
   guard and the wrong-suspicion reconfig fix; their shrunk artifacts
   are pinned as replay regressions below. The sweep must now be
   entirely clean. If a protocol change makes a plan fail again, this
   test is the place that notices: fix the protocol (and re-baseline
   DESIGN.md), do not suppress. *)
let test_smoke_sweep_clean () =
  let r1 = Fuzz.sweep ~seed:1 ~plans:20 ~n:5 () in
  let r2 = Fuzz.sweep ~seed:1 ~plans:20 ~n:5 () in
  let indexes r = List.map (fun f -> f.Fuzz.index) r.Fuzz.failures in
  check
    (Alcotest.list Alcotest.int)
    "deterministic verdicts" (indexes r1) (indexes r2);
  check Alcotest.int "deterministic sampling" r1.Fuzz.views_sampled
    r2.Fuzz.views_sampled;
  check (Alcotest.list Alcotest.int) "no failing plan" [] (indexes r1);
  check Alcotest.bool "sweep ok" true (Fuzz.ok r1);
  check Alcotest.bool "invariants sampled" true (r1.Fuzz.views_sampled > 0)

(* ------------------------------------------------------------------ *)
(* the closed counterexamples, replayed from their pinned artifacts *)

(* test/artifacts/chaos-{11,17}.json are the shrunk plans the pre-fix
   harness produced for seed 1 (see EXPERIMENTS.md C0). Replaying them
   clean is the regression gate for both fixes. *)
let replay_artifact name =
  let file = Filename.concat "artifacts" name in
  match Plan.load file with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok plan ->
    let outcome = Runner.run plan in
    if not (Runner.ok outcome) then
      Alcotest.failf "%s replays dirty:@.%a" name
        Fmt.(vbox (list Runner.pp_violation))
        outcome.Runner.violations

let test_chaos_11_artifact_replays_clean () = replay_artifact "chaos-11.json"
let test_chaos_17_artifact_replays_clean () = replay_artifact "chaos-17.json"

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "generation deterministic" `Quick
            test_plan_generation_deterministic;
          Alcotest.test_case "json round-trip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_plan_file_roundtrip;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin" `Quick test_shrink_ddmin;
          Alcotest.test_case "parameter pass" `Quick test_shrink_params;
          Alcotest.test_case "shrink_op strictly smaller" `Quick
            test_plan_shrink_op_strictly_smaller;
          Alcotest.test_case "broken checker shrinks and replays" `Quick
            test_broken_checker_shrinks_and_replays;
        ] );
      ( "runner",
        [
          Alcotest.test_case "stale member cannot veto election" `Quick
            test_stale_member_cannot_veto_election;
          Alcotest.test_case "majority loss recovers via epoch bump" `Quick
            test_majority_loss_recovers_via_epoch_bump;
          Alcotest.test_case "slow member plan converges" `Quick
            test_slow_member_plan_converges;
          Alcotest.test_case "link window plan converges" `Quick
            test_link_window_plan_converges;
          Alcotest.test_case "slow member: adaptive suspicion contrast" `Quick
            test_slow_member_adaptive_contrast;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "fixed-seed smoke sweep clean" `Quick
            test_smoke_sweep_clean;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "chaos-11 replays clean" `Quick
            test_chaos_11_artifact_replays_clean;
          Alcotest.test_case "chaos-17 replays clean" `Quick
            test_chaos_17_artifact_replays_clean;
        ] );
    ]
