(* Tests for the chaos fault-plan fuzzer (lib/chaos): plan generation
   determinism, JSON artifact round-trips, ddmin shrinking (both pure
   and end-to-end against a deliberately broken invariant checker),
   the fixed-seed smoke sweep with its two known protocol
   counterexamples, and regressions for bugs the harness found. *)

open Tasim
module Plan = Chaos.Plan
module Runner = Chaos.Runner
module Fuzz = Chaos.Fuzz
module Shrink = Chaos.Shrink

let check = Alcotest.check
let plan_str p = Fmt.str "%a" Plan.pp p

(* ------------------------------------------------------------------ *)
(* plans *)

let test_plan_generation_deterministic () =
  let p1 = Plan.generate ~seed:7 ~n:5 ~ops:8 in
  let p2 = Plan.generate ~seed:7 ~n:5 ~ops:8 in
  check Alcotest.string "same seed, same plan" (plan_str p1) (plan_str p2);
  let p3 = Plan.generate ~seed:8 ~n:5 ~ops:8 in
  check Alcotest.bool "different seed, different plan" true
    (plan_str p1 <> plan_str p3);
  check Alcotest.int "requested op count" 8 (List.length p1.Plan.ops);
  List.iter
    (fun op ->
      check Alcotest.bool "op starts within horizon" true
        (Plan.op_time op <= Plan.horizon))
    p1.Plan.ops

(* one op of every kind, with every optional field exercised *)
let every_op_plan =
  {
    Plan.seed = 1;
    n = 5;
    ops =
      [
        Plan.Crash { at = Time.of_ms 100; proc = 2 };
        Plan.Recover { at = Time.of_ms 200; proc = 2 };
        Plan.Partition { at = Time.of_ms 300; block = [ 0; 1 ] };
        Plan.Heal { at = Time.of_ms 400 };
        Plan.Omission_burst
          { at = Time.of_ms 500; until = Time.of_ms 600; prob = 0.25; seed = 99 };
        Plan.Filter_window
          {
            at = Time.of_ms 700;
            until = Time.of_ms 800;
            kind = "decision";
            src = Some 1;
            dst = None;
          };
        Plan.Slow_window
          {
            at = Time.of_ms 900;
            until = Time.of_sec 1;
            prob = 0.5;
            delay_max = Time.of_ms 5;
          };
      ];
  }

let test_plan_json_roundtrip () =
  let roundtrip p =
    (* through the JSON tree and through the printed string *)
    (match Plan.of_json (Plan.to_json p) with
    | Error e -> Alcotest.failf "of_json: %s" e
    | Ok p' -> check Alcotest.string "tree round-trip" (plan_str p) (plan_str p'));
    let s = Harness.Bench_json.to_string (Plan.to_json p) in
    match Harness.Bench_json.of_string s with
    | Error e -> Alcotest.failf "of_string: %s" e
    | Ok json -> (
      match Plan.of_json json with
      | Error e -> Alcotest.failf "of_json after print: %s" e
      | Ok p' ->
        check Alcotest.string "string round-trip" (plan_str p) (plan_str p');
        check Alcotest.bool "structural equality" true (p = p'))
  in
  roundtrip every_op_plan;
  roundtrip (Plan.generate ~seed:123 ~n:5 ~ops:8);
  check Alcotest.bool "garbage rejected" true
    (match Plan.of_json (Harness.Bench_json.Obj [ ("seed", Harness.Bench_json.Int 1) ]) with
    | Error _ -> true
    | Ok _ -> false)

let test_plan_file_roundtrip () =
  let file = Filename.temp_file "chaos-plan" ".json" in
  Plan.save file every_op_plan;
  (match Plan.load file with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok p ->
    check Alcotest.string "file round-trip" (plan_str every_op_plan) (plan_str p));
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* shrinking *)

let test_shrink_ddmin () =
  let violates l = List.mem 3 l && List.mem 7 l in
  Shrink.reset_probes ();
  check
    (Alcotest.list Alcotest.int)
    "1-minimal, order preserved" [ 3; 7 ]
    (Shrink.minimize ~violates [ 1; 3; 5; 7; 9 ]);
  check Alcotest.bool "oracle consulted" true (Shrink.probes () > 0);
  check
    (Alcotest.list Alcotest.int)
    "non-violating input unchanged" [ 1; 2 ]
    (Shrink.minimize ~violates:(fun _ -> false) [ 1; 2 ]);
  check
    (Alcotest.list Alcotest.int)
    "empty input" []
    (Shrink.minimize ~violates [])

(* A deliberately broken invariant checker: flags any down process.
   Every plan containing a crash "violates" as soon as the exclusion
   view installs, so shrinking must strip the noise ops and keep
   exactly the crash — the end-to-end path the real counterexamples
   take (ISSUE acceptance: seeded violation -> minimal op list ->
   replay from JSON artifact). *)
let down_check svc =
  let engine = Timewheel.Service.engine svc in
  let n = Engine.n engine in
  if List.for_all (fun p -> Engine.is_up engine p) (Proc_id.all ~n) then []
  else
    [
      {
        Timewheel.Invariant.property = "no-downtime";
        detail = "some process is down";
      };
    ]

let test_broken_checker_shrinks_and_replays () =
  let plan =
    {
      Plan.seed = 11;
      n = 5;
      ops =
        [
          Plan.Partition { at = Time.of_ms 200; block = [ 0; 1; 2 ] };
          Plan.Heal { at = Time.of_ms 400 };
          Plan.Crash { at = Time.of_ms 600; proc = 1 };
          Plan.Recover { at = Time.of_sec 2; proc = 1 };
        ];
    }
  in
  let outcome = Runner.run ~check:down_check plan in
  check Alcotest.bool "full plan violates" false (Runner.ok outcome);
  let shrunk = Runner.minimize ~check:down_check plan in
  (match shrunk.Plan.ops with
  | [ Plan.Crash { proc = 1; _ } ] -> ()
  | ops ->
    Alcotest.failf "expected the minimal plan [crash p1], got %d op(s): %a"
      (List.length ops) Plan.pp shrunk);
  (* the artifact replays to the same verdict *)
  let file = Filename.temp_file "chaos-shrunk" ".json" in
  Plan.save file shrunk;
  (match Plan.load file with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok loaded ->
    check Alcotest.string "artifact round-trip" (plan_str shrunk)
      (plan_str loaded);
    check Alcotest.bool "replay reproduces the violation" false
      (Runner.ok (Runner.run ~check:down_check loaded)));
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* runner outcomes pinned by handcrafted plans *)

(* Regression for the reconfiguration candidate-selection fix in
   [Member.try_reconfig_create]: after [crash p2] the group is
   {p0 p1 p3 p4}; isolating p3 shrinks it to {p0 p1 p4}; repartitioning
   around p0 reconnects the stale ex-member p3 with p1 and p4 just as
   they enter the n-failure election. p3's reconfig stream contaminates
   the heard-set, and electing "all of the heard-set" (the old reading
   of the paper's rule) can never succeed because p3 is outside the
   group — the election deadlocks forever. Choosing the new group as
   heard-set intersected with the current group converges. *)
let test_stale_member_cannot_veto_election () =
  let plan =
    {
      Plan.seed = 77;
      n = 5;
      ops =
        [
          Plan.Crash { at = Time.of_ms 500; proc = 2 };
          Plan.Partition { at = Time.of_ms 1500; block = [ 3 ] };
          Plan.Partition { at = Time.of_ms 3000; block = [ 0 ] };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "no violation" true (Runner.ok outcome);
  check Alcotest.bool "converges (not blocked)" false outcome.Runner.blocked

(* A plan that crashes the newest view down to a minority loses that
   state for good (recovery is amnesiac): the paper's fail-safe answer
   is to block, which the runner classifies rather than flags. *)
let test_majority_loss_classified_blocked () =
  let plan =
    {
      Plan.seed = 33;
      n = 5;
      ops =
        [
          Plan.Crash { at = Time.of_ms 500; proc = 2 };
          Plan.Partition { at = Time.of_ms 1500; block = [ 3 ] };
          Plan.Crash { at = Time.of_ms 3000; proc = 4 };
        ];
    }
  in
  let outcome = Runner.run plan in
  check Alcotest.bool "blocking is not a violation" true (Runner.ok outcome);
  check Alcotest.bool "classified as fail-safe blocked" true
    outcome.Runner.blocked

(* ------------------------------------------------------------------ *)
(* the fixed-seed smoke sweep *)

(* The sweep is a pure function of (seed, plans, n, ops). Seed 1 is the
   suite's fixed seed; among its 20 plans the harness currently finds
   exactly two genuine protocol counterexamples, both shrunk to 3 ops
   and kept as known gaps (see DESIGN.md):
   - plan #11: a mass crash leaves an amnesiac majority that re-forms a
     second epoch whose group ids collide with surviving views
     ("view agreement" violation);
   - plan #17: a wrongly-suspected process with a suspended failure
     detector is deaf to the reconfiguration stream and the election
     deadlocks ("convergence" violation).
   If a protocol change fixes one of these, this test is the place
   that notices: update it (and DESIGN.md) rather than suppressing. *)
let test_smoke_sweep_finds_known_counterexamples () =
  let r1 = Fuzz.sweep ~seed:1 ~plans:20 ~n:5 () in
  let r2 = Fuzz.sweep ~seed:1 ~plans:20 ~n:5 () in
  let indexes r = List.map (fun f -> f.Fuzz.index) r.Fuzz.failures in
  check
    (Alcotest.list Alcotest.int)
    "deterministic verdicts" (indexes r1) (indexes r2);
  check Alcotest.int "deterministic sampling" r1.Fuzz.views_sampled
    r2.Fuzz.views_sampled;
  check
    (Alcotest.list Alcotest.int)
    "the two known counterexamples" [ 11; 17 ] (indexes r1);
  check Alcotest.int "fail-safe blocked plans" 2 r1.Fuzz.blocked;
  check Alcotest.bool "sweep not ok" false (Fuzz.ok r1);
  List.iter
    (fun f ->
      check Alcotest.int "shrunk to 3 ops" 3
        (List.length f.Fuzz.shrunk.Plan.ops);
      check Alcotest.bool "shrunk plan still violates" false
        (Runner.ok f.Fuzz.outcome);
      (* the sweep regenerates each plan from (seed, index) *)
      check Alcotest.string "plan_of regenerates the original"
        (plan_str f.Fuzz.original)
        (plan_str
           (Fuzz.plan_of ~seed:1 ~n:5 ~ops:Fuzz.default_ops ~index:f.Fuzz.index)))
    r1.Fuzz.failures;
  match r1.Fuzz.failures with
  | [ f11; f17 ] ->
    (match f11.Fuzz.outcome.Runner.violations with
    | { Runner.property = "view agreement"; _ } :: _ -> ()
    | _ -> Alcotest.fail "plan #11 should violate view agreement");
    (match f17.Fuzz.outcome.Runner.violations with
    | { Runner.property = "convergence"; _ } :: _ -> ()
    | _ -> Alcotest.fail "plan #17 should violate convergence")
  | _ -> Alcotest.fail "expected exactly two failures"

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "generation deterministic" `Quick
            test_plan_generation_deterministic;
          Alcotest.test_case "json round-trip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_plan_file_roundtrip;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin" `Quick test_shrink_ddmin;
          Alcotest.test_case "broken checker shrinks and replays" `Quick
            test_broken_checker_shrinks_and_replays;
        ] );
      ( "runner",
        [
          Alcotest.test_case "stale member cannot veto election" `Quick
            test_stale_member_cannot_veto_election;
          Alcotest.test_case "majority loss blocks fail-safe" `Quick
            test_majority_loss_classified_blocked;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "fixed-seed smoke sweep" `Quick
            test_smoke_sweep_finds_known_counterexamples;
        ] );
    ]
