(* Domain-safety of the shared runtime pieces.

   The sharded cluster (Cluster.Sharded) runs one poll loop per OCaml
   domain. Nothing mutable is meant to be shared between shards except
   Stats — whose counters are atomic cells — and the codec, whose
   scratch state (writer, proc-set builder, oal entry array, window
   reader) lives in domain-local storage. These tests drive exactly
   those two from several domains at once and check that no count is
   lost and no frame is corrupted; plus the single-domain
   bit-identity contract: with one domain, totals are exactly what
   the unsynchronized implementation produced. *)

open Tasim

let domains = 4
let bumps_per_domain = 100_000

let spawn_all f = List.init domains (fun i -> Domain.spawn (fun () -> f i))
let join_all ds = List.iter Domain.join ds

(* concurrent bumps on one shared counter lose nothing *)
let stats_concurrent_bumps () =
  let s = Stats.create () in
  let c = Stats.counter s "shared" in
  join_all
    (spawn_all (fun _ ->
         for _ = 1 to bumps_per_domain do
           Stats.bump c
         done));
  Alcotest.(check int) "no bump lost" (domains * bumps_per_domain)
    (Stats.count s "shared")

(* concurrent interning: every domain interns the same names while
   bumping them; totals survive and the table stays consistent *)
let stats_concurrent_intern () =
  let s = Stats.create () in
  join_all
    (spawn_all (fun d ->
         let mine = Stats.counter s (Printf.sprintf "domain:%d" d) in
         let shared = Stats.counter s "interned-everywhere" in
         for _ = 1 to bumps_per_domain do
           Stats.bump mine;
           Stats.bump_by shared 2
         done));
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d private counter" d)
      bumps_per_domain
      (Stats.count s (Printf.sprintf "domain:%d" d))
  done;
  Alcotest.(check int) "shared interned counter" (2 * domains * bumps_per_domain)
    (Stats.count s "interned-everywhere");
  (* the string API aliases the same cells *)
  Stats.incr s "interned-everywhere";
  Alcotest.(check int) "string incr lands on the same cell"
    ((2 * domains * bumps_per_domain) + 1)
    (Stats.count s "interned-everywhere")

(* mixed string/interned updates from several domains, then a merge:
   the merged totals are the arithmetic sum *)
let stats_concurrent_merge () =
  let parts =
    List.init domains (fun _ ->
        let s = Stats.create () in
        ( s,
          Domain.spawn (fun () ->
              for i = 1 to 1000 do
                Stats.incr s "events";
                Stats.incr_by s "bytes" i
              done) ))
  in
  List.iter (fun (_, d) -> Domain.join d) parts;
  let dst = Stats.create () in
  List.iter (fun (s, _) -> Stats.merge dst s) parts;
  Alcotest.(check int) "merged events" (domains * 1000)
    (Stats.count dst "events");
  Alcotest.(check int) "merged bytes"
    (domains * (1000 * 1001 / 2))
    (Stats.count dst "bytes")

(* single-domain totals are bit-identical to the plain-int behaviour:
   every update path lands exactly, no rounding, no loss *)
let stats_single_domain_identity () =
  let s = Stats.create () in
  let c = Stats.counter s "exact" in
  for _ = 1 to 17 do
    Stats.bump c
  done;
  Stats.bump_by c 25;
  Stats.incr s "exact";
  Stats.incr_by s "exact" 7;
  Alcotest.(check int) "17 + 25 + 1 + 7" 50 (Stats.count s "exact");
  Alcotest.(check int) "interned view agrees" 50 (Stats.counter_value c)

(* the codec's domain-local scratch: concurrent encode/decode in every
   domain, frames must round-trip bit-exactly (a shared scratch would
   interleave and corrupt) *)
let codec_parallel_round_trip () =
  let pc = Runtime.Codec.string_payload in
  let mk_msg d i : Runtime.Live.msg =
    Timewheel.Full_stack.Gc
      (Timewheel.Control_msg.Submit
         {
           semantics = Broadcast.Semantics.total_strong;
           payload = Printf.sprintf "domain-%d-payload-%d" d i;
         })
  in
  let failures =
    spawn_all (fun d ->
        let sender = Proc_id.of_int (d + 1) in
        let buf = Bytes.create Runtime.Codec.max_frame in
        let w = Runtime.Wire.writer_into buf ~pos:0 in
        let bad = ref 0 in
        for i = 1 to 20_000 do
          let msg = mk_msg d i in
          let len = Runtime.Codec.encode_to pc ~sender msg w in
          match Runtime.Codec.decode_bytes pc buf ~pos:0 ~len with
          | Ok (src, msg') when Proc_id.equal src sender && msg' = msg -> ()
          | Ok _ | Error _ -> incr bad
        done;
        !bad)
    |> List.map Domain.join
  in
  Alcotest.(check (list int)) "no corrupted frame in any domain"
    (List.init domains (fun _ -> 0))
    failures

(* Sharded.run: results come back in shard order, exceptions are
   re-raised after every domain is joined *)
let sharded_run () =
  let results = Runtime.Cluster.Sharded.run ~shards:4 (fun ~shard -> shard * 10) in
  Alcotest.(check (list int)) "shard order" [ 0; 10; 20; 30 ] results;
  Alcotest.(check (list int)) "inline single shard" [ 0 ]
    (Runtime.Cluster.Sharded.run ~shards:1 (fun ~shard -> shard));
  Alcotest.(check bool) "zero shards rejected" true
    (match Runtime.Cluster.Sharded.run ~shards:0 (fun ~shard -> shard) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "a shard's exception resurfaces" true
    (match
       Runtime.Cluster.Sharded.run ~shards:3 (fun ~shard ->
           if shard = 1 then failwith "shard down" else shard)
     with
    | _ -> false
    | exception Failure msg -> msg = "shard down")

let () =
  Alcotest.run "domains"
    [
      ( "stats",
        [
          Alcotest.test_case "concurrent bumps lose no counts" `Quick
            stats_concurrent_bumps;
          Alcotest.test_case "concurrent interning stays consistent" `Quick
            stats_concurrent_intern;
          Alcotest.test_case "per-domain stats merge to the exact sum" `Quick
            stats_concurrent_merge;
          Alcotest.test_case "single-domain totals are exact" `Quick
            stats_single_domain_identity;
        ] );
      ( "codec",
        [
          Alcotest.test_case "parallel round-trips (domain-local scratch)"
            `Quick codec_parallel_round_trip;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "Sharded.run: order, inline, errors" `Quick
            sharded_run;
        ] );
    ]
