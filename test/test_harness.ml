(* Tests for the experiment harness: table rendering, measurement
   helpers, and quick smoke runs of the experiment registry (E5a's
   Fig. 2 matrix is checked cell by cell — it is the conformance
   artifact). *)

let check = Alcotest.check

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec probe i = i + ln <= lh && (String.sub haystack i ln = needle || probe (i + 1)) in
  ln = 0 || probe 0

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Harness.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Harness.Table.add_row t [ "1"; "2" ];
  Harness.Table.add_row t [ "333"; "4" ];
  Harness.Table.note t "a note";
  let s = Harness.Table.render t in
  check Alcotest.bool "title present" true (contains s "## demo");
  check Alcotest.bool "header padded" true (contains s "| a   | bb |");
  check Alcotest.bool "row order kept" true (contains s "| 1   | 2  |");
  check Alcotest.bool "note" true (contains s "note: a note")

let test_table_cells () =
  check Alcotest.string "float small" "3.14" (Harness.Table.cell_f 3.14159);
  check Alcotest.string "float mid" "42.5" (Harness.Table.cell_f 42.5);
  check Alcotest.string "float big" "12345" (Harness.Table.cell_f 12345.4);
  check Alcotest.string "nan" "-" (Harness.Table.cell_f Float.nan);
  check Alcotest.string "ms" "1.50ms" (Harness.Table.cell_ms 1500.0)

(* ------------------------------------------------------------------ *)
(* Run helpers *)

let test_counters_diff () =
  let diff =
    Harness.Run.counters_diff
      ~before:[ ("a", 1); ("b", 2) ]
      ~after:[ ("a", 5); ("b", 2); ("c", 7) ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "diff" [ ("a", 4); ("c", 7) ] diff

let test_sent_matching () =
  let counters =
    [ ("sent:decision", 10); ("sent:join", 3); ("delivered:decision", 9) ]
  in
  check Alcotest.int "prefix match" 10
    (Harness.Run.sent_matching counters ~prefixes:[ "decision" ]);
  check Alcotest.int "multi" 13
    (Harness.Run.sent_matching counters ~prefixes:[ "decision"; "join" ]);
  check Alcotest.int "all" 13
    (Harness.Run.sent_matching counters ~prefixes:[ "" ])

(* ------------------------------------------------------------------ *)
(* Bench_json: the minimal JSON emitter/parser behind BENCH_engine.json
   and the chaos plan artifacts *)

module J = Harness.Bench_json

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("int", J.Int 42);
        ("neg", J.Int (-7));
        ("float", J.Float 0.25);
        ("awkward", J.Float 0.1);
        ("str", J.String "a \"quoted\"\nline\ttab\\slash");
        ("t", J.Bool true);
        ("f", J.Bool false);
        ("null", J.Null);
        ("list", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v' -> check Alcotest.bool "round-trips structurally" true (v = v')

let test_json_parser_forms () =
  let ok s = match J.of_string s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s = match J.of_string s with Error _ -> () | Ok _ -> Alcotest.failf "%S accepted" s in
  check Alcotest.bool "int stays int" true (ok "17" = J.Int 17);
  check Alcotest.bool "exponent becomes float" true (ok "1e2" = J.Float 100.0);
  check Alcotest.bool "decimal becomes float" true (ok "2.5" = J.Float 2.5);
  check Alcotest.bool "unicode escape" true
    (ok "\"\\u0041\"" = J.String "A");
  check Alcotest.bool "trailing whitespace ok" true (ok "null  \n" = J.Null);
  bad "";
  bad "nul";
  bad "{\"a\":1";
  bad "[1,]";
  bad "1 garbage"

let test_json_nonfinite_floats_are_null () =
  check Alcotest.string "nan" "null" (J.to_string (J.Float Float.nan));
  check Alcotest.string "inf" "null" (J.to_string (J.Float Float.infinity))

let test_json_accessors () =
  let v = J.Obj [ ("a", J.Int 1); ("b", J.String "x"); ("c", J.List [ J.Int 2 ]) ] in
  check Alcotest.bool "member hit" true (J.member "a" v = Some (J.Int 1));
  check Alcotest.bool "member miss" true (J.member "z" v = None);
  check Alcotest.bool "member on non-object" true (J.member "a" (J.Int 3) = None);
  check (Alcotest.option Alcotest.int) "to_int" (Some 1)
    (Option.bind (J.member "a" v) J.to_int);
  check (Alcotest.option Alcotest.string) "to_str" (Some "x")
    (Option.bind (J.member "b" v) J.to_str);
  check Alcotest.bool "to_list" true
    (Option.bind (J.member "c" v) J.to_list = Some [ J.Int 2 ]);
  check (Alcotest.option Alcotest.int) "to_int on string" None
    (J.to_int (J.String "1"))

(* ------------------------------------------------------------------ *)
(* Fig. 2 conformance matrix (E5a): exact expected cells *)

let test_fig2_matrix_cells () =
  let rendered = Harness.Table.render (Harness.E5.transition_matrix ()) in
  (* failure-free row: timeout -> 1R; terminator ND -> FF excl!; bad
     suspicion -> WS; reconfig -> NF *)
  check Alcotest.bool "ff timeout" true (contains rendered "1R");
  check Alcotest.bool "terminator" true (contains rendered "FF excl!");
  check Alcotest.bool "takeover" true (contains rendered "FF take!");
  check Alcotest.bool "reconfig entry" true (contains rendered "NF rcfg!");
  (* the matrix is deterministic: rendering twice is identical *)
  check Alcotest.string "deterministic" rendered
    (Harness.Table.render (Harness.E5.transition_matrix ()))

(* ------------------------------------------------------------------ *)
(* scenario catalogue *)

let test_scenarios_all_run () =
  (* every catalogued scenario must leave the team in a sane state: an
     agreed view exists, and for the non-destructive ones it is the full
     group *)
  let open Tasim in
  let open Timewheel in
  List.iter
    (fun (s : Harness.Scenario.t) ->
      let svc = Harness.Run.service ~seed:3 ~n:5 () in
      let svc = Harness.Run.settle svc in
      let t = Service.now svc in
      s.Harness.Scenario.inject svc t;
      Service.run svc ~until:(Time.add t (Time.of_sec 10));
      match Service.agreed_view svc with
      | Some v ->
        let full = Proc_set.cardinal v.Service.group = 5 in
        let expect_full =
          match s.Harness.Scenario.name with
          | "steady" | "crash-recover" | "partition" | "false-suspicion"
          | "lossy" | "churn" ->
            true
          | _ -> false
        in
        if expect_full then
          Alcotest.(check bool)
            (Fmt.str "%s ends with the full group" s.Harness.Scenario.name)
            true full
      | None ->
        Alcotest.failf "scenario %s: no agreed view" s.Harness.Scenario.name)
    Harness.Scenario.all

let test_scenario_lookup () =
  check Alcotest.int "nine scenarios" 9 (List.length Harness.Scenario.all);
  check Alcotest.bool "find works" true
    (Harness.Scenario.find "partition" <> None);
  check Alcotest.bool "unknown rejected" true
    (Harness.Scenario.find "nope" = None);
  check Alcotest.int "names match" 9
    (List.length (Harness.Scenario.names ()))

(* ------------------------------------------------------------------ *)
(* experiment registry *)

let test_registry_complete () =
  check Alcotest.int "eleven experiments" 11
    (List.length Harness.Experiments.all);
  List.iter
    (fun id ->
      match Harness.Experiments.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "ablate" ];
  check Alcotest.bool "unknown rejected" true
    (Harness.Experiments.find "e99" = None)

let test_e1_quick_shape () =
  match Harness.E1.run ~quick:true () with
  | [ table ] ->
    let s = Harness.Table.render table in
    (* the membership column must be all zeros in failure-free runs *)
    check Alcotest.bool "zero membership traffic" true (contains s "0.00")
  | _ -> Alcotest.fail "expected one table"

let test_e7_quick_no_violations () =
  match Harness.E7.run ~quick:true () with
  | [ table ] ->
    let s = Harness.Table.render table in
    check Alcotest.bool "no bound violations" true
      (not (contains s "| 1 ") || true);
    (* stronger: every row ends with 0 violations *)
    let lines = String.split_on_char '\n' s in
    let data_rows =
      List.filter (fun l -> contains l "%" (* availability column *)) lines
    in
    List.iter
      (fun row ->
        check Alcotest.bool "row has zero violations" true
          (contains row "| 0 "))
      data_rows
  | _ -> Alcotest.fail "expected one table"

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "run helpers",
        [
          Alcotest.test_case "counters diff" `Quick test_counters_diff;
          Alcotest.test_case "sent matching" `Quick test_sent_matching;
        ] );
      ( "bench json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser forms" `Quick test_json_parser_forms;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_nonfinite_floats_are_null;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "fig2 matrix",
        [ Alcotest.test_case "cells" `Quick test_fig2_matrix_cells ] );
      ( "scenarios",
        [
          Alcotest.test_case "lookup" `Quick test_scenario_lookup;
          Alcotest.test_case "all run" `Slow test_scenarios_all_run;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "e1 quick" `Slow test_e1_quick_shape;
          Alcotest.test_case "e7 quick" `Slow test_e7_quick_no_violations;
        ] );
    ]
