(* Live-chaos smoke: one fixed-seed run of every scenario in the
   Chaos.Live catalogue, against real UDP sockets on localhost.

   This is the CI gate for the live chaos harness (alias
   @live-chaos-smoke): kill/restart churn, the storage fault palette
   on a real directory, an impaired link ridden through a restart, and
   a paused (SIGSTOP-analog) member. A run is a failure iff any
   invariant is violated — agreed-view convergence, the epoch ratchet,
   no false suspicions, group-wide delivery — so a pass means the
   protocol survived every perturbation, not merely that the process
   exited.

   Wall-clock scheduling is not deterministic, but the driver's
   choices (victims, faults, downtimes) are fixed by the seed, and
   every convergence wait has a hard bound, so a hung run fails
   rather than wedging CI. *)

let seed = 7
let base_port = 48400

let () =
  (* fail fast (SKIP) where UDP sockets are unavailable, mirroring
     live_smoke *)
  (match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | fd -> Unix.close fd
  | exception Unix.Unix_error (e, _, _) ->
    Fmt.epr "live chaos smoke: SKIP: cannot open UDP sockets (%s)@."
      (Unix.error_message e);
    exit 0);
  let failed = ref 0 in
  List.iteri
    (fun i (sc : Chaos.Live.scenario) ->
      let outcome =
        Chaos.Live.run_one ~base_port:(base_port + (i * 256)) ~seed sc
      in
      Fmt.pr "live chaos smoke: %a@." Chaos.Live.pp_outcome outcome;
      if not (Chaos.Live.ok outcome) then begin
        incr failed;
        List.iter
          (fun v ->
            Fmt.epr "live chaos smoke: FAIL [%s] %a@." sc.Chaos.Live.name
              Chaos.Live.pp_violation v)
          outcome.Chaos.Live.violations
      end)
    Chaos.Live.scenarios;
  if !failed > 0 then begin
    Fmt.epr "live chaos smoke: FAIL: %d of %d scenarios violated invariants@."
      !failed
      (List.length Chaos.Live.scenarios);
    exit 1
  end;
  Fmt.pr "live chaos smoke: PASS (%d scenarios, seed %d)@."
    (List.length Chaos.Live.scenarios)
    seed
