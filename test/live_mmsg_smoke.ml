(* Batched-data-plane smoke: the live runtime with sendmmsg/recvmmsg
   explicitly engaged.

   Five members form a group over UDP with syscall batching forced on;
   the current decider is killed, the survivors re-form, and a
   broadcast is delivered by the full rejoined group — the same
   acceptance shape as live_smoke, but asserting along the way that
   the batched path is actually in use (every transport reports
   [batched], and the mmsg syscall counters are the ones moving).
   Skips (exit 0) where UDP sockets or the mmsg syscalls are
   unavailable, so non-Linux CI stays green. *)

open Tasim
open Broadcast
open Runtime

let phase_timeout = Time.of_sec 30

let fail_with fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "live mmsg smoke: FAIL: %s@." msg;
      exit 1)
    fmt

let () =
  if not Mmsg.supported then begin
    Fmt.epr "live mmsg smoke: SKIP: sendmmsg/recvmmsg unsupported here@.";
    exit 0
  end;
  let n = 5 in
  let cfg = Live.config ~n ~base_port:47900 ~batching:true () in
  let recorder = Live.recorder () in
  let clock, cluster =
    try Live.in_process cfg ~recorder ()
    with Unix.Unix_error (e, _, _) ->
      Fmt.epr "live mmsg smoke: SKIP: cannot open UDP sockets (%s)@."
        (Unix.error_message e);
      exit 0
  in
  List.iter
    (fun node ->
      if not (Transport.batched (Node.transport node)) then
        fail_with "%a is not on the batched path" Proc_id.pp (Node.self node))
    (Cluster.nodes cluster);
  Cluster.start cluster;
  let until pred =
    Cluster.run_until cluster
      ~deadline:(Time.add (Clock.now clock) phase_timeout)
      pred
  in

  (* form *)
  let full = Proc_set.full ~n in
  let agreed group () =
    match Live.agreed_view cluster with
    | Some (g, _) -> Proc_set.equal g group
    | None -> false
  in
  if not (until (agreed full)) then
    fail_with "initial 5-member group did not form within %a" Time.pp
      phase_timeout;
  let _, gid5 = Option.get (Live.agreed_view cluster) in
  Fmt.pr "live mmsg smoke: formed %a #%a@." Proc_set.pp full Group_id.pp gid5;

  (* kill the decider, survivors re-form *)
  let victim =
    match Live.decider cluster with
    | Some p -> p
    | None -> fail_with "no member holds the decider role"
  in
  Node.kill (Cluster.node cluster victim);
  let survivors = Proc_set.remove victim full in
  if not (until (agreed survivors)) then
    fail_with "survivors did not install %a within %a" Proc_set.pp survivors
      Time.pp phase_timeout;
  let _, gid4 = Option.get (Live.agreed_view cluster) in
  if not (Group_id.later gid4 ~than:gid5) then
    fail_with "4-member view id %a not later than %a" Group_id.pp gid4
      Group_id.pp gid5;
  Fmt.pr "live mmsg smoke: survivors installed %a #%a@." Proc_set.pp survivors
    Group_id.pp gid4;

  (* restart, rejoin, deliver end to end *)
  Node.restart (Cluster.node cluster victim);
  let rejoined () =
    match Live.agreed_view cluster with
    | Some (g, gid) -> Proc_set.equal g full && Group_id.later gid ~than:gid4
    | None -> false
  in
  if not (until rejoined) then
    fail_with "killed member did not rejoin within %a" Time.pp phase_timeout;
  Live.submit
    (Cluster.node cluster (Proc_id.of_int 0))
    ~semantics:Semantics.total_strong "mmsg-hello";
  let delivered_everywhere () =
    List.length
      (List.filter
         (fun (_, payload) -> payload = "mmsg-hello")
         recorder.Live.delivered)
    = n
  in
  if not (until delivered_everywhere) then
    fail_with "update not delivered by all %d members" n;

  (* the frames must actually have moved through the batched syscalls *)
  let total name =
    List.fold_left
      (fun acc node -> acc + Stats.count (Node.stats node) name)
      0 (Cluster.nodes cluster)
  in
  let sendmmsg = total "live:syscall:sendmmsg" in
  let recvmmsg = total "live:syscall:recvmmsg" in
  let sendto = total "live:syscall:sendto" in
  let recvfrom = total "live:syscall:recvfrom" in
  if sendmmsg = 0 then fail_with "no sendmmsg calls recorded";
  if recvmmsg = 0 then fail_with "no recvmmsg calls recorded";
  (* the impairment shim is unused here and nothing downgraded, so the
     per-datagram primitives must have stayed cold *)
  if sendto > 0 || recvfrom > 0 then
    fail_with "per-datagram syscalls used on the batched path (%d sendto, %d \
               recvfrom)"
      sendto recvfrom;
  List.iter
    (fun node ->
      if not (Transport.batched (Node.transport node)) then
        fail_with "%a downgraded off the batched path mid-run" Proc_id.pp
          (Node.self node))
    (Cluster.nodes cluster);
  Fmt.pr
    "live mmsg smoke: PASS (%d sent, %d received; %d sendmmsg, %d recvmmsg, \
     0 per-datagram syscalls)@."
    (total "live:sent") (total "live:recv") sendmmsg recvmmsg
