(* Whole-cluster integration tests of the timewheel membership protocol:
   group formation, single and multiple failures, false suspicions,
   partitions, joins with state transfer, and randomized churn safety
   (the Section 3 properties). *)

open Tasim
open Timewheel
open Broadcast

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Proc_id.of_int
let set_of ids = Proc_set.of_list (List.map pid ids)

let make ?(seed = 1) ?(omission = 0.0) ~n () =
  Harness.Run.service ~seed ~omission ~n ()

let agreed_group svc =
  Option.map (fun v -> v.Service.group) (Service.agreed_view svc)

let check_agreed svc expected msg =
  match Service.agreed_view svc with
  | Some v ->
    check Alcotest.bool msg true (Proc_set.equal v.Service.group expected)
  | None -> Alcotest.failf "%s: no agreed view" msg

(* ------------------------------------------------------------------ *)
(* formation *)

let test_initial_group_forms () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  check_agreed svc (Proc_set.full ~n:5) "full group";
  (* formation is the only membership change *)
  let gids =
    Service.views_installed svc
    |> List.map (fun (_, v) -> Group_id.seq v.Service.group_id)
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.int) "single view" [ 0 ] gids

let test_formation_time_bounded () =
  (* the join protocol converges within a few cycles *)
  let svc = make ~n:7 () in
  let svc = Harness.Run.settle svc in
  let formed_at =
    List.fold_left
      (fun acc (_, v) -> Time.max acc v.Service.at)
      Time.zero (Service.views_installed svc)
  in
  let cycle = Params.cycle (Service.params svc) in
  check Alcotest.bool "within 4 cycles" true
    (Time.compare formed_at (Time.mul cycle 4) <= 0)

let test_formation_under_loss () =
  let svc = make ~seed:5 ~omission:0.05 ~n:5 () in
  let svc = Harness.Run.settle svc in
  check_agreed svc (Proc_set.full ~n:5) "forms despite loss"

let test_large_group_forms () =
  (* the n=32 group spans more than half the bitset's first word and
     exercises the array/bitset membership hot paths at a size where a
     leftover O(n) scan or per-call table build would dominate; the
     full invariant sweep then checks the formed state, not just the
     agreed view *)
  let n = 32 in
  let svc = make ~n () in
  let svc = Harness.Run.settle svc in
  check_agreed svc (Proc_set.full ~n) "full 32-member group";
  (* a little workload so ordinal consistency has content *)
  let t0 = Service.now svc in
  for i = 0 to 19 do
    Service.submit_at svc
      (Time.add t0 (Time.of_ms (40 * i)))
      (pid (i mod n))
      ~semantics:Semantics.total_strong i
  done;
  Service.run svc ~until:(Time.add t0 (Time.of_sec 2));
  check_agreed svc (Proc_set.full ~n) "view stable under workload";
  match Invariant.check_all ~n (Invariant.take (Service.engine svc)) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "invariant violated: %a" Invariant.pp_violation v

(* ------------------------------------------------------------------ *)
(* single failures *)

let test_crash_member_excluded () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 2);
  Service.run svc ~until:(Time.add t (Time.of_sec 3));
  check_agreed svc (set_of [ 0; 1; 3; 4 ]) "victim excluded";
  check Alcotest.bool "logs consistent" true (Harness.Run.survivors_consistent svc)

let test_crash_recovery_latency_bound () =
  (* detection <= 2D + cycle; recovery completes within ~1s *)
  let svc = make ~n:5 () in
  let watcher = Harness.Run.watch_views svc in
  let svc = Harness.Run.settle svc in
  let fault_at = Time.add (Service.now svc) (Time.of_ms 100) in
  Service.crash_at svc fault_at (pid 3);
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 3));
  let change =
    Harness.Run.measure_exclusion watcher svc ~fault_at ~victims:(set_of [ 3 ])
  in
  match change.Harness.Run.victim_gone with
  | None -> Alcotest.fail "no recovery"
  | Some gone ->
    let params = Service.params svc in
    let bound =
      (* one rotation until the victim's turn + 2D detection + ring *)
      Time.add (Params.cycle params) (Time.mul (Params.fd_timeout params) 2)
    in
    check Alcotest.bool "bounded recovery" true
      (Time.compare (Time.sub gone fault_at) bound <= 0)

let test_sequential_single_failures () =
  (* two crashes, far apart: two single-failure elections *)
  let svc = make ~n:7 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 2);
  Service.crash_at svc (Time.add t (Time.of_sec 2)) (pid 5);
  Service.run svc ~until:(Time.add t (Time.of_sec 5));
  check_agreed svc (set_of [ 0; 1; 3; 4; 6 ]) "both excluded";
  (* no reconfiguration messages should have been needed *)
  check Alcotest.int "no reconfigurations" 0
    (Stats.count (Service.stats svc) "sent:reconfiguration")

let test_rejoin_after_crash () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 2);
  Service.recover_at svc (Time.add t (Time.of_sec 2)) (pid 2);
  Service.run svc ~until:(Time.add t (Time.of_sec 6));
  check_agreed svc (Proc_set.full ~n:5) "rejoined"

(* ------------------------------------------------------------------ *)
(* false suspicions *)

let test_wrong_suspicion_masked () =
  (* one decision lost to the decider's successor only: no view change *)
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let views_before = List.length (Service.views_installed svc) in
  let engine = Service.engine svc in
  Net.add_filter (Engine.net engine) ~max_drops:1 ~name:"to-succ"
    (fun ~src ~dst msg ->
      Control_msg.kind msg = "decision"
      &&
      match Engine.state_of engine src with
      | Some s -> (
        match Proc_set.successor_in (Member.group s) src ~n:5 with
        | Some next -> Proc_id.equal next dst
        | None -> false)
      | None -> false);
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 3));
  check Alcotest.int "no view change" views_before
    (List.length (Service.views_installed svc));
  check_agreed svc (Proc_set.full ~n:5) "group intact"

let test_lost_decision_to_all_excludes_and_readmits () =
  (* if nobody receives the decision, the timed model allows excluding
     the live decider; it must re-join automatically afterwards *)
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let engine = Service.engine svc in
  Net.add_filter (Engine.net engine) ~max_drops:4 ~name:"to-all"
    (fun ~src:_ ~dst:_ msg -> Control_msg.kind msg = "decision");
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 5));
  check_agreed svc (Proc_set.full ~n:5) "full group again after readmission";
  let distinct_gids =
    Service.views_installed svc
    |> List.map (fun (_, v) -> v.Service.group_id)
    |> List.sort_uniq compare
  in
  check Alcotest.bool "exclusion and readmission happened" true
    (List.length distinct_gids >= 3)

(* ------------------------------------------------------------------ *)
(* multiple failures *)

let test_double_crash_reconfiguration () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 1);
  Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 3);
  Service.run svc ~until:(Time.add t (Time.of_sec 5));
  check_agreed svc (set_of [ 0; 2; 4 ]) "majority group formed";
  check Alcotest.bool "reconfiguration ran" true
    (Stats.count (Service.stats svc) "sent:reconfiguration" > 0)

let test_minority_cannot_form_group () =
  (* crash 3 of 5: the 2 survivors must never install a new group *)
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  List.iter
    (fun p -> Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid p))
    [ 0; 1; 2 ];
  Service.run svc ~until:(Time.add t (Time.of_sec 8));
  let new_views =
    Service.views_installed svc
    |> List.filter (fun (_, v) -> Group_id.later v.Service.group_id ~than:(Group_id.form ~epoch:0))
  in
  check Alcotest.int "no minority group" 0 (List.length new_views);
  check Alcotest.bool "survivors know they are out of date" true
    (Service.agreed_view svc = None)

let test_majority_restored_after_mass_recovery () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  List.iter
    (fun p -> Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid p))
    [ 0; 1; 2 ];
  List.iter
    (fun p -> Service.recover_at svc (Time.add t (Time.of_sec 3)) (pid p))
    [ 0; 1; 2 ];
  Service.run svc ~until:(Time.add t (Time.of_sec 10));
  check_agreed svc (Proc_set.full ~n:5) "full group restored"

(* ------------------------------------------------------------------ *)
(* partitions *)

let test_partition_majority_survives () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.partition_at svc
    (Time.add t (Time.of_ms 100))
    [ set_of [ 0; 1; 2 ]; set_of [ 3; 4 ] ];
  Service.run svc ~until:(Time.add t (Time.of_sec 5));
  check_agreed svc (set_of [ 0; 1; 2 ]) "majority side operates"

let test_partition_heals_to_full_group () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  Service.partition_at svc
    (Time.add t (Time.of_ms 100))
    [ set_of [ 0; 1; 2 ]; set_of [ 3; 4 ] ];
  Service.heal_at svc (Time.add t (Time.of_sec 4));
  Service.run svc ~until:(Time.add t (Time.of_sec 10));
  check_agreed svc (Proc_set.full ~n:5) "full group after heal"

(* ------------------------------------------------------------------ *)
(* replicated state machine over faults *)

let test_state_machine_total_order_across_decider_crash () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  for i = 0 to 29 do
    Service.submit_at svc
      (Time.add t (Time.of_ms (20 * i)))
      (pid (i mod 5))
      ~semantics:Semantics.total_strong i
  done;
  (* crash whoever holds the decider role mid-stream *)
  let engine = Service.engine svc in
  Engine.at engine (Time.add t (Time.of_ms 300)) (fun () ->
      match
        List.find_opt
          (fun p ->
            match Engine.state_of engine p with
            | Some s -> Member.is_decider s
            | None -> false)
          (Proc_id.all ~n:5)
      with
      | Some d -> Engine.crash_at engine (Engine.now engine) d
      | None -> ());
  Service.run svc ~until:(Time.add t (Time.of_sec 5));
  check Alcotest.bool "identical survivor logs" true
    (Harness.Run.survivors_consistent svc);
  (* all survivor logs must be equal, not just prefix-compatible *)
  let logs =
    List.filter_map
      (fun p -> Service.app_state svc p)
      (Proc_id.all ~n:5)
  in
  match logs with
  | first :: rest ->
    List.iter
      (fun l -> check Alcotest.bool "equal logs" true (l = first))
      rest
  | [] -> Alcotest.fail "no survivor logs"

let test_joiner_catches_up_via_state_transfer () =
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t = Service.now svc in
  (* deliver some updates, then crash p4, then more updates, recover *)
  for i = 0 to 9 do
    Service.submit_at svc
      (Time.add t (Time.of_ms (30 * i)))
      (pid 0) ~semantics:Semantics.total_strong i
  done;
  Service.crash_at svc (Time.add t (Time.of_ms 400)) (pid 4);
  for i = 10 to 19 do
    Service.submit_at svc
      (Time.add t (Time.of_ms (600 + (30 * (i - 10)))))
      (pid 0) ~semantics:Semantics.total_strong i
  done;
  Service.recover_at svc (Time.add t (Time.of_sec 2)) (pid 4);
  Service.run svc ~until:(Time.add t (Time.of_sec 6));
  check_agreed svc (Proc_set.full ~n:5) "rejoined";
  (* the rejoined process must hold the full 20-update history *)
  match Service.app_state svc (pid 4) with
  | Some log ->
    check Alcotest.int "full history" 20 (List.length log);
    (match Service.app_state svc (pid 0) with
    | Some log0 -> check Alcotest.bool "same as p0" true (log = log0)
    | None -> Alcotest.fail "p0 missing")
  | None -> Alcotest.fail "p4 has no app state"

(* ------------------------------------------------------------------ *)
(* Section 4.3 end to end: a lost proposal is marked undeliverable and
   nobody delivers it, while the rest of the stream survives. *)

let test_lost_proposal_marked_undeliverable () =
  let svc = make ~n:5 () in
  let engine = Service.engine svc in
  (* p2's proposal datagrams never reach anyone: the only copy of its
     update lives at p2 *)
  Net.add_filter (Engine.net engine) ~name:"mute-p2-proposals"
    (fun ~src ~dst:_ msg ->
      Proc_id.equal src (pid 2)
      && String.equal (Control_msg.kind msg) "proposal");
  let deliveries = ref [] in
  Service.on_delivery svc (fun proc ~at:_ proposal ~ordinal:_ ->
      deliveries := (proc, proposal.Proposal.payload) :: !deliveries);
  (* the moment p2 delivers its own update 999 (i.e. it ordered it as
     decider and broadcast the descriptor), crash it *)
  Service.on_obs svc (fun _at proc obs ->
      match obs with
      | Member.Delivered { proposal; _ }
        when Proc_id.equal proc (pid 2) && proposal.Proposal.payload = 999 ->
        Engine.crash_at engine (Engine.now engine) (pid 2)
      | _ -> ());
  let svc = Harness.Run.settle svc in
  let t0 = Service.now svc in
  (* background stream from others, the doomed update from p2 *)
  for i = 0 to 19 do
    Service.submit_at svc
      (Time.add t0 (Time.of_ms (40 * i)))
      (pid (if i mod 5 = 2 then 0 else i mod 5))
      ~semantics:Semantics.total_strong i
  done;
  Service.submit_at svc (Time.add t0 (Time.of_ms 110)) (pid 2)
    ~semantics:Semantics.total_strong 999;
  Service.run svc ~until:(Time.add t0 (Time.of_sec 5));
  (* p2 is gone; survivors agree *)
  check_agreed svc (set_of [ 0; 1; 3; 4 ]) "p2 excluded";
  (* no survivor ever delivered the lost update *)
  check Alcotest.bool "lost update not delivered by survivors" true
    (not
       (List.exists
          (fun (p, v) -> v = 999 && not (Proc_id.equal p (pid 2)))
          !deliveries));
  (* the rest of the stream is complete and consistent *)
  check Alcotest.bool "logs consistent" true
    (Harness.Run.survivors_consistent svc);
  (match Service.app_state svc (pid 0) with
  | Some log -> check Alcotest.int "all other updates" 20 (List.length log)
  | None -> Alcotest.fail "p0 missing");
  (* and the survivors' oals record the mark *)
  let marked =
    List.exists
      (fun p ->
        match Service.member_state svc p with
        | Some s ->
          List.exists
            (fun (id : Proposal.id) -> Proc_id.equal id.Proposal.origin (pid 2))
            (Oal.undeliverable_ids (Member.oal_of s))
        | None -> false)
      [ pid 0; pid 1; pid 3; pid 4 ]
  in
  (* the mark may already have been purged with its entry; accept either
     the mark being visible or the entry being gone, but the delivery
     assertions above are the real contract *)
  ignore marked

(* Strong atomicity end to end: a member missing a dependency's payload
   must not deliver the dependent update until recovery, even though the
   dependent update itself is unordered (deliverable on receipt). *)

let test_strong_atomicity_blocks_until_dependency_recovered () =
  let svc = make ~n:5 () in
  let engine = Service.engine svc in
  (* the payload of p0's first update never reaches p4 directly *)
  Net.add_filter (Engine.net engine) ~max_drops:1 ~name:"a-to-p4"
    (fun ~src ~dst msg ->
      Proc_id.equal src (pid 0)
      && Proc_id.equal dst (pid 4)
      && String.equal (Control_msg.kind msg) "proposal");
  let order_at_p4 = ref [] in
  Service.on_delivery svc (fun proc ~at:_ proposal ~ordinal:_ ->
      if Proc_id.equal proc (pid 4) then
        order_at_p4 := proposal.Proposal.payload :: !order_at_p4);
  let svc = Harness.Run.settle svc in
  let t0 = Service.now svc in
  (* A: ordered update that p4 will have to recover via nack *)
  Service.submit_at svc t0 (pid 0) ~semantics:Semantics.total_strong 1;
  (* B: unordered but strong — depends on everything up to its hdo,
     which includes A once A was delivered at the proposer *)
  Service.submit_at svc
    (Time.add t0 (Time.of_ms 300))
    (pid 0)
    ~semantics:Semantics.{ ordering = Unordered; atomicity = Strong }
    2;
  Service.run svc ~until:(Time.add t0 (Time.of_sec 4));
  (* p4 delivered both, and A strictly before B despite B's payload
     arriving first *)
  check (Alcotest.list Alcotest.int) "dependency order at p4" [ 1; 2 ]
    (List.rev !order_at_p4);
  check Alcotest.bool "consistent" true (Harness.Run.survivors_consistent svc)

(* ------------------------------------------------------------------ *)
(* regression: silent ordinal gaps under message lateness.

   A decider used to pre-acknowledge the ORIGIN of an update when
   appending its descriptor. Under sustained message lateness the
   origin could miss every decision carrying the descriptor while the
   entry still counted as stable (its "ack" was fabricated), got purged
   everywhere, and left the origin with an ordinal gap its total-order
   delivery silently marched past — delivering later updates in a
   different order than everyone else. *)

let test_no_silent_gaps_under_lateness () =
  List.iter
    (fun seed ->
      let svc = Harness.Run.service ~seed ~late:0.08 ~n:5 () in
      let svc = Harness.Run.settle svc in
      let t0 = Service.now svc in
      for i = 0 to 149 do
        Service.submit_at svc
          (Time.add t0 (Time.of_ms (50 * i)))
          (pid (i mod 5))
          ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
          i
      done;
      Service.run svc ~until:(Time.add t0 (Time.of_sec 8));
      Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 4));
      check Alcotest.bool
        (Fmt.str "consistent under lateness (seed %d)" seed)
        true
        (Harness.Run.survivors_consistent svc))
    [ 101; 102; 105 ]

(* ------------------------------------------------------------------ *)
(* long-run boundedness and determinism *)

let test_long_run_state_stays_bounded () =
  (* 30 simulated seconds of steady workload: stability purging must
     keep the oal and the proposal buffers from growing without bound *)
  let svc = make ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t0 = Service.now svc in
  let updates = 600 in
  for i = 0 to updates - 1 do
    Service.submit_at svc
      (Time.add t0 (Time.of_ms (50 * i)))
      (pid (i mod 5))
      ~semantics:Semantics.total_strong i
  done;
  Service.run svc ~until:(Time.add t0 (Time.of_sec 32));
  List.iter
    (fun p ->
      match Service.member_state svc p with
      | Some s ->
        let oal = Member.oal_of s in
        (* everything long-delivered and stable must have been purged:
           only the in-flight tail may remain *)
        check Alcotest.bool
          (Fmt.str "oal bounded at %a (%d entries)" Proc_id.pp p
             (Oal.cardinal oal))
          true
          (Oal.cardinal oal < 40);
        check Alcotest.bool "purge frontier advanced" true (Oal.low oal > 500);
        let stored = List.length (Buffers.stored (Member.buffers_of s)) in
        check Alcotest.bool
          (Fmt.str "buffers bounded at %a (%d stored)" Proc_id.pp p stored)
          true (stored < 80)
      | None -> Alcotest.fail "member down")
    (Proc_id.all ~n:5);
  check Alcotest.bool "logs complete" true
    (match Service.app_state svc (pid 0) with
    | Some log -> List.length log = updates
    | None -> false)

let test_service_determinism () =
  (* identical seeds produce bit-identical view histories *)
  let history seed =
    let svc = make ~seed ~n:5 () in
    let svc = Harness.Run.settle svc in
    let t = Service.now svc in
    Service.crash_at svc (Time.add t (Time.of_ms 100)) (pid 2);
    Service.recover_at svc (Time.add t (Time.of_sec 2)) (pid 2);
    Service.run svc ~until:(Time.add t (Time.of_sec 5));
    List.map
      (fun (p, (v : Service.view)) ->
        (Proc_id.to_int p, v.Service.group_id, v.Service.at,
         List.map Proc_id.to_int (Proc_set.to_list v.Service.group)))
      (Service.views_installed svc)
  in
  check Alcotest.bool "same seed, same history" true
    (history 123 = history 123);
  check Alcotest.bool "different seed, different timing" true
    (history 123 <> history 124)

(* the dissemination layer's default must be the paper's broadcast,
   bit for bit: a run with the implicit defaults and one with explicit
   [All_to_all] + adaptive suspicion off must produce identical view
   histories and identical wire counters, seed by seed, including
   through a crash/recover cycle *)
let prop_explicit_all_to_all_equals_default =
  QCheck.Test.make ~count:10
    ~name:"explicit all-to-all run == default-params run"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let trace params =
        let svc = Harness.Run.service ~seed ?params ~n:5 () in
        let svc = Harness.Run.settle svc in
        let t = Service.now svc in
        Service.crash_at svc (Time.add t (Time.of_ms 200)) (pid 2);
        Service.recover_at svc (Time.add t (Time.of_sec 2)) (pid 2);
        Service.run svc ~until:(Time.add t (Time.of_sec 4));
        let views =
          List.map
            (fun (p, (v : Service.view)) ->
              ( Proc_id.to_int p,
                v.Service.group_id,
                v.Service.at,
                List.map Proc_id.to_int (Proc_set.to_list v.Service.group) ))
            (Service.views_installed svc)
        in
        (views, Harness.Run.counters_snapshot svc)
      in
      let explicit =
        Params.make ~n:5 ~dissemination:Dissemination.All_to_all
          ~adaptive_suspicion:false ()
      in
      trace None = trace (Some explicit))

(* ------------------------------------------------------------------ *)
(* protocol variants (ablation flags) *)

let test_no_fast_path_still_recovers () =
  (* with the single-failure election disabled, a crash is handled by
     the slotted reconfiguration: slower, but still correct *)
  let params = Params.make ~single_failure_election:false ~n:5 () in
  let svc = Harness.Run.service ~seed:7 ~params ~n:5 () in
  let watcher = Harness.Run.watch_views svc in
  let svc = Harness.Run.settle svc in
  let fault_at = Time.add (Service.now svc) (Time.of_ms 100) in
  Service.crash_at svc fault_at (pid 2);
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 6));
  check_agreed svc (set_of [ 0; 1; 3; 4 ]) "excluded via reconfiguration";
  check Alcotest.int "no no-decision messages" 0
    (Stats.count (Service.stats svc) "sent:no-decision");
  check Alcotest.bool "reconfiguration messages used" true
    (Stats.count (Service.stats svc) "sent:reconfiguration" > 0);
  let change =
    Harness.Run.measure_exclusion watcher svc ~fault_at
      ~victims:(set_of [ 2 ])
  in
  (* slower than the fast path: more than one cycle *)
  match change.Harness.Run.victim_gone with
  | Some gone ->
    check Alcotest.bool "slower than a cycle" true
      (Time.compare (Time.sub gone fault_at)
         (Params.cycle (Service.params svc))
      > 0)
  | None -> Alcotest.fail "never recovered"

let test_eager_decisions_deliver_faster () =
  let latency params seed =
    let svc = Harness.Run.service ~seed ~params ~n:5 () in
    let stats = Stats.create () in
    Service.on_delivery svc (fun _p ~at proposal ~ordinal:_ ->
        Stats.record_time stats "lat" (Time.sub at proposal.Proposal.send_ts));
    let svc = Harness.Run.settle svc in
    let t0 = Service.now svc in
    for i = 0 to 29 do
      Service.submit_at svc
        (Time.add t0 (Time.of_ms (20 * i)))
        (pid (i mod 5))
        ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
        i
    done;
    Service.run svc ~until:(Time.add t0 (Time.of_sec 3));
    match Stats.summary_of stats "lat" with
    | Some s -> s.Stats.p50
    | None -> Alcotest.fail "no deliveries"
  in
  let paced = latency (Params.make ~n:5 ()) 13 in
  let eager = latency (Params.make ~eager_decisions:true ~n:5 ()) 13 in
  check Alcotest.bool "eager is faster" true (eager < paced)

(* ------------------------------------------------------------------ *)
(* safety properties (Section 3) under randomized churn *)

let churn_run seed =
  let n = 5 in
  let svc = make ~seed ~n () in
  let svc = Harness.Run.settle svc in
  let rng = Rng.create (seed * 31 + 7) in
  let t0 = Service.now svc in
  (* random crash/recovery schedule, keeping a majority alive *)
  let crashed = ref Proc_set.empty in
  let t = ref t0 in
  for _ = 1 to 6 do
    t := Time.add !t (Time.of_ms (300 + Rng.int rng 500));
    let p = pid (Rng.int rng n) in
    if Proc_set.mem p !crashed then begin
      crashed := Proc_set.remove p !crashed;
      Service.recover_at svc !t p
    end
    else if Proc_set.cardinal !crashed < 2 then begin
      crashed := Proc_set.add p !crashed;
      Service.crash_at svc !t p
    end
  done;
  (* recover everyone, then let it settle *)
  let heal_at = Time.add !t (Time.of_sec 1) in
  List.iter (fun p -> Service.recover_at svc heal_at p) (Proc_set.to_list !crashed);
  Service.run svc ~until:(Time.add heal_at (Time.of_sec 6));
  svc

let prop_churn_group_agreement =
  QCheck.Test.make ~count:8 ~name:"same group id => same group under churn"
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let svc = churn_run seed in
      (* property 2: every installation of a given group id names the
         same group *)
      let by_gid = Hashtbl.create 16 in
      List.for_all
        (fun ((_, v) : Proc_id.t * Service.view) ->
          match Hashtbl.find_opt by_gid v.Service.group_id with
          | None ->
            Hashtbl.add by_gid v.Service.group_id v.Service.group;
            true
          | Some g -> Proc_set.equal g v.Service.group)
        (Service.views_installed svc))

let prop_churn_majority =
  QCheck.Test.make ~count:8 ~name:"every installed group holds a majority"
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let svc = churn_run seed in
      List.for_all
        (fun ((_, v) : Proc_id.t * Service.view) ->
          Proc_set.is_majority v.Service.group ~n:5)
        (Service.views_installed svc))

let prop_churn_convergence =
  QCheck.Test.make ~count:8 ~name:"full group restored after churn stops"
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let svc = churn_run seed in
      match agreed_group svc with
      | Some g -> Proc_set.equal g (Proc_set.full ~n:5)
      | None -> false)

let prop_churn_invariants_sampled =
  QCheck.Test.make ~count:6
    ~name:"invariants hold at every 50ms sample under churn"
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let n = 5 in
      let svc = make ~seed ~n () in
      let svc = Harness.Run.settle svc in
      let engine = Service.engine svc in
      let rng = Rng.create (seed * 13 + 1) in
      let t0 = Service.now svc in
      (* random crash/recovery wave *)
      let crashed = ref Proc_set.empty in
      let t = ref t0 in
      for _ = 1 to 5 do
        t := Time.add !t (Time.of_ms (300 + Rng.int rng 500));
        let p = pid (Rng.int rng n) in
        if Proc_set.mem p !crashed then begin
          crashed := Proc_set.remove p !crashed;
          Service.recover_at svc !t p
        end
        else if Proc_set.cardinal !crashed < 2 then begin
          crashed := Proc_set.add p !crashed;
          Service.crash_at svc !t p
        end
      done;
      List.iter
        (fun p -> Service.recover_at svc (Time.add !t (Time.of_sec 1)) p)
        (Proc_set.to_list !crashed);
      (* workload so ordinal consistency has content *)
      for i = 0 to 59 do
        Service.submit_at svc
          (Time.add t0 (Time.of_ms (60 * i)))
          (pid (i mod n))
          ~semantics:Semantics.total_strong i
      done;
      let violations = ref [] in
      let horizon = Time.add !t (Time.of_sec 6) in
      let rec sample at =
        if Time.compare at horizon < 0 then begin
          Engine.at engine at (fun () ->
              violations :=
                Invariant.check_all ~n (Invariant.take engine) @ !violations);
          sample (Time.add at (Time.of_ms 50))
        end
      in
      sample t0;
      Service.run svc ~until:horizon;
      match !violations with
      | [] -> true
      | v :: _ ->
        Fmt.epr "violation: %a@." Invariant.pp_violation v;
        false)

let prop_churn_log_consistency =
  QCheck.Test.make ~count:6 ~name:"survivor logs stay prefix-consistent"
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let n = 5 in
      let svc = make ~seed ~n () in
      let svc = Harness.Run.settle svc in
      let t0 = Service.now svc in
      (* workload + one random crash *)
      for i = 0 to 39 do
        Service.submit_at svc
          (Time.add t0 (Time.of_ms (25 * i)))
          (pid (i mod n))
          ~semantics:Semantics.total_strong i
      done;
      let rng = Rng.create seed in
      Service.crash_at svc
        (Time.add t0 (Time.of_ms (200 + Rng.int rng 400)))
        (pid (Rng.int rng n));
      Service.run svc ~until:(Time.add t0 (Time.of_sec 5));
      Harness.Run.survivors_consistent svc)

let () =
  Alcotest.run "membership-integration"
    [
      ( "formation",
        [
          Alcotest.test_case "initial group" `Quick test_initial_group_forms;
          Alcotest.test_case "bounded time" `Quick test_formation_time_bounded;
          Alcotest.test_case "under loss" `Quick test_formation_under_loss;
          Alcotest.test_case "32 members" `Quick test_large_group_forms;
        ] );
      ( "single failure",
        [
          Alcotest.test_case "member excluded" `Quick test_crash_member_excluded;
          Alcotest.test_case "latency bound" `Quick test_crash_recovery_latency_bound;
          Alcotest.test_case "sequential crashes" `Quick test_sequential_single_failures;
          Alcotest.test_case "rejoin" `Quick test_rejoin_after_crash;
        ] );
      ( "false suspicion",
        [
          Alcotest.test_case "masked" `Quick test_wrong_suspicion_masked;
          Alcotest.test_case "lost to all" `Quick
            test_lost_decision_to_all_excludes_and_readmits;
        ] );
      ( "multiple failures",
        [
          Alcotest.test_case "double crash" `Quick test_double_crash_reconfiguration;
          Alcotest.test_case "minority blocked" `Quick test_minority_cannot_form_group;
          Alcotest.test_case "mass recovery" `Quick test_majority_restored_after_mass_recovery;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "majority survives" `Quick test_partition_majority_survives;
          Alcotest.test_case "heals" `Quick test_partition_heals_to_full_group;
        ] );
      ( "replicated state",
        [
          Alcotest.test_case "total order across crash" `Quick
            test_state_machine_total_order_across_decider_crash;
          Alcotest.test_case "state transfer" `Quick test_joiner_catches_up_via_state_transfer;
        ] );
      ( "section 4.3",
        [
          Alcotest.test_case "lost proposal undeliverable" `Quick
            test_lost_proposal_marked_undeliverable;
          Alcotest.test_case "strong atomicity blocks" `Quick
            test_strong_atomicity_blocks_until_dependency_recovered;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "no silent gaps under lateness" `Slow
            test_no_silent_gaps_under_lateness;
        ] );
      ( "long run",
        [
          Alcotest.test_case "state stays bounded" `Slow
            test_long_run_state_stays_bounded;
          Alcotest.test_case "determinism" `Quick test_service_determinism;
          qcheck prop_explicit_all_to_all_equals_default;
        ] );
      ( "ablation flags",
        [
          Alcotest.test_case "no fast path" `Quick test_no_fast_path_still_recovers;
          Alcotest.test_case "eager decisions" `Quick
            test_eager_decisions_deliver_faster;
        ] );
      ( "churn properties",
        [
          qcheck prop_churn_group_agreement;
          qcheck prop_churn_majority;
          qcheck prop_churn_convergence;
          qcheck prop_churn_log_consistency;
          qcheck prop_churn_invariants_sampled;
        ] );
    ]
