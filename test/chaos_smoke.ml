(* CI smoke gate, run with [dune build @chaos-smoke]: a small
   fixed-seed chaos sweep, replay of the pinned counterexample
   artifacts (chaos-11, the amnesiac epoch fork; chaos-17, the
   wrong-suspicion deafness), and the slow-member scenario (one sick
   machine must not break membership invariants). Exits nonzero on the
   first violation, so the alias fails the build. *)

open Tasim

let replay name =
  let path = Filename.concat "artifacts" name in
  match Chaos.Plan.load path with
  | Error msg -> Fmt.epr "replay %s: cannot load: %s@." name msg; exit 2
  | Ok plan ->
    let outcome = Chaos.Runner.run plan in
    if Chaos.Runner.ok outcome then Fmt.pr "replay %s: ok@." name
    else begin
      Fmt.epr "replay %s: VIOLATION@." name;
      List.iter
        (fun v -> Fmt.epr "  %a@." Chaos.Runner.pp_violation v)
        outcome.Chaos.Runner.violations;
      exit 1
    end

(* the Lifeguard failure mode, end to end through the runner: two
   seconds of one member's dispatches stochastically delayed past the
   fail-aware bound — wrong suspicions are allowed (and masked), but
   every invariant must hold and the team must reconverge *)
let slow_member () =
  let plan =
    {
      Chaos.Plan.seed = 21;
      n = 5;
      ops =
        [
          Chaos.Plan.Slow_member
            {
              at = Time.of_ms 500;
              until = Time.of_ms 2500;
              proc = 3;
              prob = 0.5;
              delay_max = Time.of_ms 20;
            };
        ];
    }
  in
  let outcome = Chaos.Runner.run plan in
  if Chaos.Runner.ok outcome then Fmt.pr "slow member: ok@."
  else begin
    Fmt.epr "slow member: VIOLATION@.";
    List.iter
      (fun v -> Fmt.epr "  %a@." Chaos.Runner.pp_violation v)
      outcome.Chaos.Runner.violations;
    exit 1
  end

(* the fixed-seed topology sweep: every scenario family, seed 1. The
   N=64 churn scenario runs once (it is the expensive one); the small
   scenarios run 3 seeds each. *)
let topology () =
  List.iter
    (fun (s : Chaos.Topology.scenario) ->
      let runs = if s.Chaos.Topology.n >= 64 then 1 else 3 in
      let report = Chaos.Topology.sweep ~runs ~seed:1 s in
      Fmt.pr "%a@." Chaos.Topology.pp_report report;
      if not (Chaos.Topology.ok report) then exit 1)
    Chaos.Topology.scenarios

let () =
  let report = Chaos.Fuzz.sweep ~seed:1 ~plans:6 ~n:5 () in
  Fmt.pr "%a@." Chaos.Fuzz.pp_report report;
  if not (Chaos.Fuzz.ok report) then exit 1;
  List.iter replay [ "chaos-11.json"; "chaos-17.json" ];
  slow_member ();
  topology ();
  Fmt.pr "chaos smoke: all clear@."
