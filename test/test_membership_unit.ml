(* Unit tests for the membership protocol's pure components: parameters,
   slot arithmetic, control messages, the failure detector, the
   group-creator FSM (every edge of Fig. 2) and the undeliverable
   proposal classification of Section 4.3. *)

open Tasim
open Broadcast
open Timewheel
module CS = Creator_state
module GC = Group_creator
module FD = Failure_detector

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Proc_id.of_int
let set_of ids = Proc_set.of_list (List.map pid ids)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_defaults () =
  let p = Params.make ~n:5 () in
  check Alcotest.int "slot >= d + delta" (Time.of_ms 40) p.Params.slot_len;
  check Alcotest.int "cycle" (Time.of_ms 200) (Params.cycle p);
  check Alcotest.int "fd timeout = 2D" (Time.of_ms 60) (Params.fd_timeout p);
  check Alcotest.int "alive window = N slots" (Time.of_ms 200)
    (Params.alive_window p);
  check Alcotest.int "majority" 3 (Params.majority p);
  check Alcotest.int "late bound" (Time.of_ms 13) (Params.late_bound p)

let test_params_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Params.make ~n:1 ());
  raises (fun () -> Params.make ~n:5 ~slot_len:(Time.of_ms 10) ());
  raises (fun () -> Params.make ~n:5 ~d:Time.zero ());
  raises (fun () -> Params.make ~n:5 ~delta:Time.zero ())

(* ------------------------------------------------------------------ *)
(* Slots *)

let params5 = Params.make ~n:5 ()

let test_slots_index_owner () =
  check Alcotest.int "index 0" 0 (Slots.index params5 Time.zero);
  check Alcotest.int "index at boundary" 1
    (Slots.index params5 (Time.of_ms 40));
  check Alcotest.int "negative clamps" 0
    (Slots.index params5 (Time.of_ms (-5)));
  check Alcotest.int "owner wraps" 0
    (Proc_id.to_int (Slots.owner params5 5));
  check Alcotest.int "owner at" 2
    (Proc_id.to_int (Slots.owner_at params5 (Time.of_ms 95)));
  check Alcotest.int "start_of" (Time.of_ms 120) (Slots.start_of params5 3)

let test_slots_next_own () =
  (* p1 owns slots 1, 6, 11 ... (40ms each) *)
  check Alcotest.int "before own slot" (Time.of_ms 40)
    (Slots.next_own_slot params5 ~self:(pid 1) ~now:(Time.of_ms 10));
  check Alcotest.int "inside own slot -> next cycle" (Time.of_ms 240)
    (Slots.next_own_slot params5 ~self:(pid 1) ~now:(Time.of_ms 50));
  check (Alcotest.option Alcotest.int) "current own slot" (Some (Time.of_ms 40))
    (Slots.current_own_slot_start params5 ~self:(pid 1) ~now:(Time.of_ms 50));
  check (Alcotest.option Alcotest.int) "not own slot" None
    (Slots.current_own_slot_start params5 ~self:(pid 1) ~now:(Time.of_ms 90))

let test_slots_freshness_window () =
  (* from p0's slot at t=200 (slot 5), p1's message at slot 1 (t=40) is
     exactly N-1 = 4 slots back and must count as fresh *)
  check Alcotest.bool "n-1 slots back is fresh" true
    (Slots.in_last_k_slots params5 ~now:(Time.of_ms 200)
       ~sent_at:(Time.of_ms 40) ~k:4);
  check Alcotest.bool "n slots back is stale" false
    (Slots.in_last_k_slots params5 ~now:(Time.of_ms 240)
       ~sent_at:(Time.of_ms 40) ~k:4);
  check Alcotest.bool "future not counted" false
    (Slots.in_last_k_slots params5 ~now:(Time.of_ms 40)
       ~sent_at:(Time.of_ms 90) ~k:4)

let test_slots_own_latest () =
  (* p2 owns slot 2 (80-120ms) and slot 7 (280-320ms) *)
  check Alcotest.bool "latest slot" true
    (Slots.was_own_latest_slot params5 ~sender:(pid 2)
       ~sent_at:(Time.of_ms 90) ~now:(Time.of_ms 200));
  check Alcotest.bool "superseded by newer own slot" false
    (Slots.was_own_latest_slot params5 ~sender:(pid 2)
       ~sent_at:(Time.of_ms 90) ~now:(Time.of_ms 300));
  check Alcotest.bool "not the sender's slot" false
    (Slots.was_own_latest_slot params5 ~sender:(pid 2)
       ~sent_at:(Time.of_ms 50) ~now:(Time.of_ms 200))

let prop_slots_owner_consistent =
  QCheck.Test.make ~name:"slot owner owns exactly every n-th slot"
    QCheck.(int_bound 10_000_000)
    (fun t ->
      let s = Slots.index params5 t in
      Proc_id.to_int (Slots.owner params5 s) = s mod 5)

let prop_next_own_slot_is_future_and_owned =
  QCheck.Test.make ~name:"next_own_slot is strictly future and owned"
    QCheck.(pair (int_bound 4) (int_bound 2_000_000))
    (fun (p, now) ->
      let at = Slots.next_own_slot params5 ~self:(pid p) ~now in
      at > now && Proc_id.to_int (Slots.owner_at params5 at) = p)

(* ------------------------------------------------------------------ *)
(* Control messages *)

let test_control_msg_kinds () =
  let decision =
    Control_msg.Decision
      { d_ts = Time.zero; d_oal = Oal.empty; d_alive = Proc_set.empty }
  in
  let join =
    Control_msg.Join_msg
      {
        j_ts = Time.of_ms 5;
        j_list = set_of [ 1 ];
        j_alive = set_of [ 1 ];
        j_epoch = 0;
      }
  in
  check Alcotest.bool "decision is control" true
    (Control_msg.is_control decision);
  check Alcotest.bool "join is control" true (Control_msg.is_control join);
  check Alcotest.bool "submit is not" false
    (Control_msg.is_control
       (Control_msg.Submit
          { semantics = Semantics.unordered_weak; payload = () }));
  check (Alcotest.option Alcotest.int) "ts" (Some (Time.of_ms 5))
    (Control_msg.control_ts join);
  check Alcotest.string "kind" "join" (Control_msg.kind join)

(* ------------------------------------------------------------------ *)
(* Failure detector *)

let fd5 () = FD.create params5 ~self:(pid 0)

let test_fd_admit_fresh_stale_late () =
  let fd = fd5 () in
  let fd, v1 = FD.admit fd ~from:(pid 1) ~ts:(Time.of_ms 100) ~now:(Time.of_ms 105) in
  check Alcotest.bool "fresh" true (v1 = FD.Fresh);
  (* duplicate (same ts) *)
  let fd, v2 = FD.admit fd ~from:(pid 1) ~ts:(Time.of_ms 100) ~now:(Time.of_ms 106) in
  check Alcotest.bool "stale dup" true (v2 = FD.Stale);
  (* older ts (still timely, so staleness is what rejects it) *)
  let fd, v3 = FD.admit fd ~from:(pid 1) ~ts:(Time.of_ms 95) ~now:(Time.of_ms 106) in
  check Alcotest.bool "stale old" true (v3 = FD.Stale);
  (* late: apparent delay beyond delta + epsilon + sigma = 13ms *)
  let _, v4 = FD.admit fd ~from:(pid 2) ~ts:(Time.of_ms 100) ~now:(Time.of_ms 150) in
  check Alcotest.bool "late" true (v4 = FD.Late)

let test_fd_alive_window () =
  let fd = fd5 () in
  let fd, _ = FD.admit fd ~from:(pid 1) ~ts:(Time.of_ms 100) ~now:(Time.of_ms 105) in
  let alive = FD.alive_list fd ~now:(Time.of_ms 150) in
  check Alcotest.bool "heard process alive" true (Proc_set.mem (pid 1) alive);
  check Alcotest.bool "self always alive" true (Proc_set.mem (pid 0) alive);
  (* beyond N slots = 200ms the record ages out *)
  let alive = FD.alive_list fd ~now:(Time.of_ms 350) in
  check Alcotest.bool "aged out" false (Proc_set.mem (pid 1) alive)

let test_fd_surveillance () =
  let fd = fd5 () in
  let fd = FD.expect fd ~sender:(pid 2) ~base:(Time.of_ms 100) in
  check (Alcotest.option Alcotest.int) "deadline = base + 2D"
    (Some (Time.of_ms 160)) (FD.deadline fd);
  check Alcotest.bool "satisfied by right sender+fresh ts" true
    (FD.satisfied_by fd ~from:(pid 2) ~ts:(Time.of_ms 120));
  check Alcotest.bool "wrong sender" false
    (FD.satisfied_by fd ~from:(pid 3) ~ts:(Time.of_ms 120));
  (* epsilon slack: a timestamp slightly before base still satisfies *)
  check Alcotest.bool "epsilon slack" true
    (FD.satisfied_by fd ~from:(pid 2) ~ts:(Time.of_ms 99));
  check Alcotest.bool "too old" false
    (FD.satisfied_by fd ~from:(pid 2) ~ts:(Time.of_ms 90));
  check (Alcotest.option Alcotest.int) "timeout" (Some 2)
    (Option.map Proc_id.to_int (FD.timeout_suspect fd ~now:(Time.of_ms 160)));
  check (Alcotest.option Alcotest.int) "not yet" None
    (Option.map Proc_id.to_int (FD.timeout_suspect fd ~now:(Time.of_ms 159)));
  let fd = FD.suspend fd in
  check (Alcotest.option Alcotest.int) "suspended" None
    (Option.map Proc_id.to_int (FD.timeout_suspect fd ~now:(Time.of_sec 1)))

let test_fd_note_sent_blocks_self_concurrence () =
  let fd = fd5 () in
  let fd = FD.note_sent fd ~ts:(Time.of_ms 100) in
  check Alcotest.bool "own send counts as heard" true
    (FD.heard_after fd (pid 0) ~since:(Time.of_ms 50));
  check Alcotest.bool "not after own ts" false
    (FD.heard_after fd (pid 0) ~since:(Time.of_ms 100))

let test_fd_forget () =
  let fd = fd5 () in
  let fd, _ = FD.admit fd ~from:(pid 1) ~ts:(Time.of_ms 100) ~now:(Time.of_ms 105) in
  let fd = FD.forget fd (pid 1) in
  check Alcotest.bool "forgotten" false
    (Proc_set.mem (pid 1) (FD.alive_list fd ~now:(Time.of_ms 110)))

(* ------------------------------------------------------------------ *)
(* Group creator: every edge of Fig. 2.

   Environment: team p0..p4, self varies per case, suspect = p2,
   group = full unless stated. p1 is p2's ring predecessor; p3 its
   successor. *)

let env ~self ?(group = set_of [ 0; 1; 2; 3; 4 ]) ?(sfe = true) () =
  {
    GC.self = pid self; group; n = 5; majority = 3; current_slot = 10;
    single_failure_election = sfe;
  }

let timeout = GC.Fd_timeout { suspect = pid 2; since = Time.zero }

let nd ~from ?(suspect = 2) ~concur ~pred () =
  GC.Nd_received
    {
      from = pid from;
      suspect = pid suspect;
      since = Time.zero;
      concur;
      from_ring_predecessor = pred;
    }

let decision ?(from = 3) ?(expected = true) ?(suspect = false) ?(member = true)
    () =
  GC.Decision_received
    {
      from = pid from;
      from_expected = expected;
      from_suspect = suspect;
      in_new_group = member;
    }

let reconfig ?(expected = true) ?(member = true) () =
  GC.Reconfig_received { from_expected = expected; from_member = member }

let kind = Alcotest.testable CS.pp_kind CS.equal_kind

let step_kind ~self ?group state event =
  let state', dirs = GC.step (env ~self ?group ()) state event in
  (CS.kind_of state', dirs)

let has dir dirs = List.mem dir dirs

let ws = CS.Wrong_suspicion { suspect = pid 2 }
let ofr = CS.One_failure_receive { suspect = pid 2; since = Time.zero }
let ofs = CS.One_failure_send { suspect = pid 2; since = Time.zero }
let nf = CS.N_failure { wait_until_slot = 14 }

(* --- failure-free --- *)

let test_ff_timeout_successor_sends_nd () =
  (* p3 is p2's successor: it starts the ring *)
  let k, dirs = step_kind ~self:3 CS.Failure_free timeout in
  check kind "to 1-failure-send" CS.KOne_failure_send k;
  check Alcotest.bool "sends nd" true
    (has (GC.Send_no_decision { suspect = pid 2; since = Time.zero }) dirs)

let test_ff_timeout_other_receives () =
  let k, dirs = step_kind ~self:0 CS.Failure_free timeout in
  check kind "to 1-failure-receive" CS.KOne_failure_receive k;
  check Alcotest.bool "silent" true (dirs = [])

let test_ff_nd_not_concur_to_wrong_suspicion () =
  let k, dirs =
    step_kind ~self:0 CS.Failure_free (nd ~from:3 ~concur:false ~pred:false ())
  in
  check kind "wrong suspicion" CS.KWrong_suspicion k;
  check Alcotest.bool "no resend (not the suspect)" false
    (has GC.Resend_last_control dirs)

let test_ff_nd_not_concur_suspect_resends () =
  (* p2 itself: must retransmit its last control message *)
  let k, dirs =
    step_kind ~self:2 CS.Failure_free (nd ~from:3 ~concur:false ~pred:false ())
  in
  check kind "suspect in wrong-suspicion" CS.KWrong_suspicion k;
  check Alcotest.bool "resends" true (has GC.Resend_last_control dirs)

let test_ff_nd_not_concur_from_predecessor_takes_over () =
  (* the no-decision sender's successor holds the decision: immediate
     takeover without membership change *)
  let k, dirs =
    step_kind ~self:4 CS.Failure_free (nd ~from:3 ~concur:false ~pred:true ())
  in
  check kind "stays failure-free" CS.KFailure_free k;
  check Alcotest.bool "takes over" true (has GC.Take_over_decider dirs)

let test_ff_nd_concur_relays () =
  (* p4 concurs, nd from its predecessor p3, p4 is not p2's pred *)
  let k, dirs =
    step_kind ~self:4 CS.Failure_free (nd ~from:3 ~concur:true ~pred:true ())
  in
  check kind "relays" CS.KOne_failure_send k;
  check Alcotest.bool "sends nd" true
    (has (GC.Send_no_decision { suspect = pid 2; since = Time.zero }) dirs)

let test_ff_nd_concur_terminator_excludes () =
  (* p1 is p2's ring predecessor: terminates the election *)
  let k, dirs =
    step_kind ~self:1 CS.Failure_free (nd ~from:0 ~concur:true ~pred:true ())
  in
  check kind "back to failure-free" CS.KFailure_free k;
  check Alcotest.bool "excludes" true
    (has (GC.Exclude_and_decide { suspect = pid 2 }) dirs)

let test_ff_nd_concur_exact_majority_reconfigures () =
  (* group of exactly 3 = majority: removal is not allowed *)
  let group = set_of [ 1; 2; 3 ] in
  let k, dirs =
    step_kind ~self:1 ~group CS.Failure_free
      (nd ~from:3 ~concur:true ~pred:true ())
  in
  check kind "n-failure" CS.KN_failure k;
  check Alcotest.bool "starts reconfiguration" true
    (has GC.Start_reconfiguration dirs)

let test_ff_decision_adopts () =
  let k, dirs = step_kind ~self:0 CS.Failure_free (decision ()) in
  check kind "stays" CS.KFailure_free k;
  check Alcotest.bool "adopts" true (has GC.Adopt_decision dirs)

let test_ff_decision_excluding_goes_join () =
  let k, dirs = step_kind ~self:0 CS.Failure_free (decision ~member:false ()) in
  check kind "join" CS.KJoin k;
  check Alcotest.bool "enter join" true (has GC.Enter_join dirs)

let test_ff_reconfig_from_expected () =
  let k, dirs = step_kind ~self:0 CS.Failure_free (reconfig ()) in
  check kind "n-failure" CS.KN_failure k;
  check Alcotest.bool "starts" true (has GC.Start_reconfiguration dirs)

let test_ff_reconfig_not_expected_ignored () =
  let k, dirs = step_kind ~self:0 CS.Failure_free (reconfig ~expected:false ()) in
  check kind "ignored" CS.KFailure_free k;
  check Alcotest.bool "no directives" true (dirs = [])

(* --- wrong-suspicion --- *)

let test_ws_nd_from_predecessor_takes_over () =
  let k, dirs = step_kind ~self:0 ws (nd ~from:4 ~concur:true ~pred:true ()) in
  check kind "failure-free" CS.KFailure_free k;
  check Alcotest.bool "takes over" true (has GC.Take_over_decider dirs)

let test_ws_nd_as_suspect_resends () =
  let state = CS.Wrong_suspicion { suspect = pid 0 } in
  let k, dirs =
    step_kind ~self:0 state (nd ~from:4 ~suspect:0 ~concur:false ~pred:true ())
  in
  check kind "stays" CS.KWrong_suspicion k;
  check Alcotest.bool "resends" true (has GC.Resend_last_control dirs)

let test_ws_nd_other_stays () =
  let k, dirs = step_kind ~self:0 ws (nd ~from:3 ~concur:true ~pred:false ()) in
  check kind "stays" CS.KWrong_suspicion k;
  check Alcotest.bool "silent" true (dirs = [])

let test_ws_timeout_to_n_failure () =
  let k, dirs = step_kind ~self:0 ws timeout in
  check kind "n-failure" CS.KN_failure k;
  check Alcotest.bool "starts" true (has GC.Start_reconfiguration dirs)

let test_ws_decision_member_to_ff () =
  let k, _ = step_kind ~self:0 ws (decision ()) in
  check kind "failure-free" CS.KFailure_free k

let test_ws_decision_excluded_to_join () =
  let k, _ = step_kind ~self:0 ws (decision ~member:false ()) in
  check kind "join" CS.KJoin k

let test_ws_reconfig_to_n_failure () =
  let k, _ = step_kind ~self:0 ws (reconfig ()) in
  check kind "n-failure" CS.KN_failure k

(* The chaos-17 fix: in wrong-suspicion the local failure detector is
   suspended, so the expected-sender prediction is stale; a reconfig
   from ANY current group member must pull the process into the
   election, while one from an outsider is still ignored. *)
let test_ws_reconfig_unexpected_member_joins_election () =
  let k, _ = step_kind ~self:0 ws (reconfig ~expected:false ~member:true ()) in
  check kind "n-failure" CS.KN_failure k

let test_ws_reconfig_from_outsider_ignored () =
  let k, _ =
    step_kind ~self:0 ws (reconfig ~expected:false ~member:false ())
  in
  check kind "stays wrong-suspicion" CS.KWrong_suspicion k

(* --- 1-failure-receive --- *)

let test_ofr_nd_relays () =
  let k, dirs = step_kind ~self:4 ofr (nd ~from:3 ~concur:true ~pred:true ()) in
  check kind "send state" CS.KOne_failure_send k;
  check Alcotest.bool "sends" true
    (has (GC.Send_no_decision { suspect = pid 2; since = Time.zero }) dirs)

let test_ofr_terminator () =
  let k, dirs = step_kind ~self:1 ofr (nd ~from:0 ~concur:true ~pred:true ()) in
  check kind "failure-free" CS.KFailure_free k;
  check Alcotest.bool "excludes" true
    (has (GC.Exclude_and_decide { suspect = pid 2 }) dirs)

let test_ofr_nd_not_from_predecessor_waits () =
  let k, dirs = step_kind ~self:0 ofr (nd ~from:3 ~concur:true ~pred:false ()) in
  check kind "stays" CS.KOne_failure_receive k;
  check Alcotest.bool "silent" true (dirs = [])

let test_ofr_decision_from_suspect_to_ws () =
  let k, dirs =
    step_kind ~self:0 ofr (decision ~from:2 ~expected:false ~suspect:true ())
  in
  check kind "wrong-suspicion" CS.KWrong_suspicion k;
  check Alcotest.bool "adopts info" true (has GC.Adopt_decision dirs)

let test_ofr_decision_from_expected_to_ff () =
  let k, _ = step_kind ~self:0 ofr (decision ()) in
  check kind "failure-free" CS.KFailure_free k

let test_ofr_timeout_to_nf () =
  let k, _ = step_kind ~self:0 ofr timeout in
  check kind "n-failure" CS.KN_failure k

(* --- 1-failure-send --- *)

let test_ofs_nd_stays () =
  let k, dirs = step_kind ~self:3 ofs (nd ~from:0 ~concur:true ~pred:true ()) in
  check kind "stays" CS.KOne_failure_send k;
  check Alcotest.bool "no double send" false
    (List.exists (function GC.Send_no_decision _ -> true | _ -> false) dirs)

let test_ofs_decision_to_ff () =
  let k, _ = step_kind ~self:3 ofs (decision ()) in
  check kind "failure-free" CS.KFailure_free k

let test_ofs_decision_excluded_to_join () =
  let k, _ = step_kind ~self:3 ofs (decision ~member:false ()) in
  check kind "join" CS.KJoin k

let test_ofs_timeout_to_nf () =
  let k, _ = step_kind ~self:3 ofs timeout in
  check kind "n-failure" CS.KN_failure k

let test_ofs_reconfig_to_nf () =
  let k, _ = step_kind ~self:3 ofs (reconfig ()) in
  check kind "n-failure" CS.KN_failure k

(* --- n-failure --- *)

let test_nf_decision_with_me_to_ff () =
  let k, dirs = step_kind ~self:0 nf (decision ()) in
  check kind "failure-free" CS.KFailure_free k;
  check Alcotest.bool "adopts" true (has GC.Adopt_decision dirs)

let test_nf_decision_without_me_waits () =
  let k, _ = step_kind ~self:0 nf (decision ~member:false ()) in
  check kind "stays until all heard" CS.KN_failure k

let test_nf_all_heard_to_join () =
  let k, dirs = step_kind ~self:0 nf GC.All_new_members_heard in
  check kind "join" CS.KJoin k;
  check Alcotest.bool "enter join" true (has GC.Enter_join dirs)

let test_nf_timeout_stays () =
  let k, _ = step_kind ~self:0 nf timeout in
  check kind "stays" CS.KN_failure k

let test_nf_wait_horizon () =
  (* entering n-failure from slot 10 must abstain until slot 10 + n - 1 *)
  let state', _ = GC.step (env ~self:0 ()) CS.Failure_free (reconfig ()) in
  match state' with
  | CS.N_failure { wait_until_slot } ->
    check Alcotest.int "wait until" 14 wait_until_slot
  | _ -> Alcotest.fail "expected n-failure"

(* --- join --- *)

let test_join_decision_member_to_ff () =
  let k, _ = step_kind ~self:0 CS.Join (decision ()) in
  check kind "failure-free" CS.KFailure_free k

let test_join_ignores_the_rest () =
  List.iter
    (fun event ->
      let k, dirs = step_kind ~self:0 CS.Join event in
      check kind "join inert" CS.KJoin k;
      check Alcotest.bool "silent" true (dirs = []))
    [ timeout; nd ~from:3 ~concur:true ~pred:true (); reconfig () ]

(* ------------------------------------------------------------------ *)
(* Undeliverable classification (Section 4.3) *)

let sem_total_weak = Semantics.{ ordering = Total; atomicity = Weak }
let sem_total_strong = Semantics.{ ordering = Total; atomicity = Strong }

let entry ?(sem = sem_total_weak) ?(hdo = -1) ~origin ~seq ~acks oal =
  fst
    (Oal.append_update oal
       {
         Oal.proposal_id = { Proposal.origin = pid origin; seq };
         semantics = sem;
         send_ts = Time.zero;
         hdo;
       }
       ~acks:(set_of acks))

let id_ origin seq = { Proposal.origin = pid origin; seq }

let categories oal ~departed ~highest =
  Undeliverable.classify ~oal ~departed:(set_of departed)
    ~highest_known_ordinal:highest

let test_undeliverable_lost () =
  (* proposal by departed p2, acked only by p2 itself: lost *)
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2 ] Oal.empty in
  match categories oal ~departed:[ 2 ] ~highest:0 with
  | [ (id, Undeliverable.Lost) ] ->
    check Alcotest.bool "right proposal" true (Proposal.id_equal id (id_ 2 0))
  | _ -> Alcotest.fail "expected exactly one lost classification"

let test_undeliverable_survivor_ack_saves () =
  (* a survivor holds it: deliverable *)
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2; 3 ] Oal.empty in
  check Alcotest.int "no classification" 0
    (List.length (categories oal ~departed:[ 2 ] ~highest:0))

let test_undeliverable_orphan_order () =
  (* p2's first update is lost; its second (total order, held by a
     survivor) must be orphaned to preserve FIFO *)
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2 ] Oal.empty in
  let oal = entry ~origin:2 ~seq:1 ~acks:[ 2; 3 ] oal in
  let cats = categories oal ~departed:[ 2 ] ~highest:1 in
  check Alcotest.int "two condemned" 2 (List.length cats);
  check Alcotest.bool "second is orphan-order" true
    (List.exists
       (fun (id, c) ->
         Proposal.id_equal id (id_ 2 1) && c = Undeliverable.Orphan_order)
       cats)

let test_undeliverable_orphan_atomicity () =
  (* a lost update at ordinal 0; a strong-atomicity update by another
     departed member with hdo >= 0 depends on it *)
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2 ] Oal.empty in
  let oal =
    entry ~sem:sem_total_strong ~hdo:0 ~origin:4 ~seq:0 ~acks:[ 4; 3 ] oal
  in
  let cats = categories oal ~departed:[ 2; 4 ] ~highest:1 in
  check Alcotest.bool "orphan-atomicity found" true
    (List.exists
       (fun (id, c) ->
         Proposal.id_equal id (id_ 4 0) && c = Undeliverable.Orphan_atomicity)
       cats)

let test_undeliverable_unknown_dependency () =
  (* hdo beyond anything the survivors know *)
  let oal =
    entry ~sem:sem_total_strong ~hdo:42 ~origin:2 ~seq:0 ~acks:[ 2; 3 ]
      Oal.empty
  in
  match categories oal ~departed:[ 2 ] ~highest:5 with
  | [ (_, Undeliverable.Unknown_dependency) ] -> ()
  | _ -> Alcotest.fail "expected unknown-dependency"

let test_undeliverable_survivor_proposals_untouched () =
  (* survivors' updates are never classified *)
  let oal = entry ~origin:1 ~seq:0 ~acks:[ 1 ] Oal.empty in
  check Alcotest.int "survivor untouched" 0
    (List.length (categories oal ~departed:[ 2 ] ~highest:0))

let test_undeliverable_weak_not_unknown_dep () =
  (* weak atomicity never triggers dependency rules *)
  let oal = entry ~hdo:42 ~origin:2 ~seq:0 ~acks:[ 2; 3 ] Oal.empty in
  check Alcotest.int "weak untouched" 0
    (List.length (categories oal ~departed:[ 2 ] ~highest:0))

let test_undeliverable_cascade_fixpoint () =
  (* lost -> orphan-order -> orphan-atomicity chain in one pass *)
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2 ] Oal.empty in
  let oal = entry ~origin:2 ~seq:1 ~acks:[ 2; 3 ] oal in
  let oal =
    entry ~sem:sem_total_strong ~hdo:1 ~origin:4 ~seq:0 ~acks:[ 4; 3 ] oal
  in
  let cats = categories oal ~departed:[ 2; 4 ] ~highest:2 in
  check Alcotest.int "whole chain condemned" 3 (List.length cats)

let test_undeliverable_apply_marks () =
  let oal = entry ~origin:2 ~seq:0 ~acks:[ 2 ] Oal.empty in
  let cats = categories oal ~departed:[ 2 ] ~highest:0 in
  let oal = Undeliverable.apply ~oal cats in
  check Alcotest.int "marked in oal" 1
    (List.length (Oal.undeliverable_ids oal))

let test_pending_category () =
  check Alcotest.bool "unknown dep" true
    (Undeliverable.pending_category ~undeliverable_ordinals:[]
       ~highest_known_ordinal:5 ~semantics:sem_total_strong ~hdo:9
    = Some Undeliverable.Unknown_dependency);
  check Alcotest.bool "orphan atomicity" true
    (Undeliverable.pending_category ~undeliverable_ordinals:[ 3 ]
       ~highest_known_ordinal:5 ~semantics:sem_total_strong ~hdo:4
    = Some Undeliverable.Orphan_atomicity);
  check Alcotest.bool "clean" true
    (Undeliverable.pending_category ~undeliverable_ordinals:[ 9 ]
       ~highest_known_ordinal:5 ~semantics:sem_total_strong ~hdo:4
    = None);
  check Alcotest.bool "weak exempt" true
    (Undeliverable.pending_category ~undeliverable_ordinals:[ 0 ]
       ~highest_known_ordinal:0 ~semantics:sem_total_weak ~hdo:9
    = None)

let () =
  Alcotest.run "membership-unit"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "validation" `Quick test_params_validation;
        ] );
      ( "slots",
        [
          Alcotest.test_case "index/owner" `Quick test_slots_index_owner;
          Alcotest.test_case "next own" `Quick test_slots_next_own;
          Alcotest.test_case "freshness window" `Quick test_slots_freshness_window;
          Alcotest.test_case "own latest" `Quick test_slots_own_latest;
          qcheck prop_slots_owner_consistent;
          qcheck prop_next_own_slot_is_future_and_owned;
        ] );
      ( "control messages",
        [ Alcotest.test_case "kinds" `Quick test_control_msg_kinds ] );
      ( "failure detector",
        [
          Alcotest.test_case "admit verdicts" `Quick test_fd_admit_fresh_stale_late;
          Alcotest.test_case "alive window" `Quick test_fd_alive_window;
          Alcotest.test_case "surveillance" `Quick test_fd_surveillance;
          Alcotest.test_case "note_sent" `Quick test_fd_note_sent_blocks_self_concurrence;
          Alcotest.test_case "forget" `Quick test_fd_forget;
        ] );
      ( "fig2: failure-free",
        [
          Alcotest.test_case "timeout at successor" `Quick test_ff_timeout_successor_sends_nd;
          Alcotest.test_case "timeout elsewhere" `Quick test_ff_timeout_other_receives;
          Alcotest.test_case "nd !concur" `Quick test_ff_nd_not_concur_to_wrong_suspicion;
          Alcotest.test_case "nd !concur as suspect" `Quick test_ff_nd_not_concur_suspect_resends;
          Alcotest.test_case "nd !concur takeover" `Quick
            test_ff_nd_not_concur_from_predecessor_takes_over;
          Alcotest.test_case "nd concur relay" `Quick test_ff_nd_concur_relays;
          Alcotest.test_case "nd concur terminator" `Quick test_ff_nd_concur_terminator_excludes;
          Alcotest.test_case "exact majority" `Quick
            test_ff_nd_concur_exact_majority_reconfigures;
          Alcotest.test_case "decision adopts" `Quick test_ff_decision_adopts;
          Alcotest.test_case "decision excludes" `Quick test_ff_decision_excluding_goes_join;
          Alcotest.test_case "reconfig expected" `Quick test_ff_reconfig_from_expected;
          Alcotest.test_case "reconfig ignored" `Quick test_ff_reconfig_not_expected_ignored;
        ] );
      ( "fig2: wrong-suspicion",
        [
          Alcotest.test_case "takeover" `Quick test_ws_nd_from_predecessor_takes_over;
          Alcotest.test_case "suspect resends" `Quick test_ws_nd_as_suspect_resends;
          Alcotest.test_case "other nd stays" `Quick test_ws_nd_other_stays;
          Alcotest.test_case "timeout" `Quick test_ws_timeout_to_n_failure;
          Alcotest.test_case "decision member" `Quick test_ws_decision_member_to_ff;
          Alcotest.test_case "decision excluded" `Quick test_ws_decision_excluded_to_join;
          Alcotest.test_case "reconfig" `Quick test_ws_reconfig_to_n_failure;
          Alcotest.test_case "reconfig from unexpected member" `Quick
            test_ws_reconfig_unexpected_member_joins_election;
          Alcotest.test_case "reconfig from outsider ignored" `Quick
            test_ws_reconfig_from_outsider_ignored;
        ] );
      ( "fig2: 1-failure-receive",
        [
          Alcotest.test_case "relay" `Quick test_ofr_nd_relays;
          Alcotest.test_case "terminator" `Quick test_ofr_terminator;
          Alcotest.test_case "waits" `Quick test_ofr_nd_not_from_predecessor_waits;
          Alcotest.test_case "decision from suspect" `Quick test_ofr_decision_from_suspect_to_ws;
          Alcotest.test_case "decision expected" `Quick test_ofr_decision_from_expected_to_ff;
          Alcotest.test_case "timeout" `Quick test_ofr_timeout_to_nf;
        ] );
      ( "fig2: 1-failure-send",
        [
          Alcotest.test_case "nd stays" `Quick test_ofs_nd_stays;
          Alcotest.test_case "decision" `Quick test_ofs_decision_to_ff;
          Alcotest.test_case "decision excluded" `Quick test_ofs_decision_excluded_to_join;
          Alcotest.test_case "timeout" `Quick test_ofs_timeout_to_nf;
          Alcotest.test_case "reconfig" `Quick test_ofs_reconfig_to_nf;
        ] );
      ( "fig2: n-failure",
        [
          Alcotest.test_case "decision with me" `Quick test_nf_decision_with_me_to_ff;
          Alcotest.test_case "decision without me" `Quick test_nf_decision_without_me_waits;
          Alcotest.test_case "all heard" `Quick test_nf_all_heard_to_join;
          Alcotest.test_case "timeout stays" `Quick test_nf_timeout_stays;
          Alcotest.test_case "wait horizon" `Quick test_nf_wait_horizon;
        ] );
      ( "fig2: join",
        [
          Alcotest.test_case "decision member" `Quick test_join_decision_member_to_ff;
          Alcotest.test_case "inert" `Quick test_join_ignores_the_rest;
        ] );
      ( "undeliverable",
        [
          Alcotest.test_case "lost" `Quick test_undeliverable_lost;
          Alcotest.test_case "survivor ack saves" `Quick test_undeliverable_survivor_ack_saves;
          Alcotest.test_case "orphan-order" `Quick test_undeliverable_orphan_order;
          Alcotest.test_case "orphan-atomicity" `Quick test_undeliverable_orphan_atomicity;
          Alcotest.test_case "unknown-dependency" `Quick test_undeliverable_unknown_dependency;
          Alcotest.test_case "survivors untouched" `Quick
            test_undeliverable_survivor_proposals_untouched;
          Alcotest.test_case "weak exempt" `Quick test_undeliverable_weak_not_unknown_dep;
          Alcotest.test_case "cascade" `Quick test_undeliverable_cascade_fixpoint;
          Alcotest.test_case "apply" `Quick test_undeliverable_apply_marks;
          Alcotest.test_case "pending rules" `Quick test_pending_category;
        ] );
    ]
