(* Integration tests of the full Figure 1 stack: membership + broadcast
   over the real fail-aware clock synchronization protocol over raw
   hardware clocks. *)

open Tasim
open Timewheel
open Broadcast

let check = Alcotest.check
let pid = Proc_id.of_int

type harness = {
  engine :
    ( (int, int list) Full_stack.state,
      (int, int list) Full_stack.msg,
      int Full_stack.obs )
    Engine.t;
  views : (Time.t * Proc_id.t * Group_id.t * Proc_set.t) list ref;
  started : Proc_id.t list ref;
  deliveries : (Proc_id.t * int) list ref;
}

let build ?(n = 5) ?(seed = 3) ?(omission = 0.0) ?(max_offset = Time.of_ms 200)
    () =
  let params = Params.make ~n () in
  let cs_cfg = Clocksync.Protocol.default_config ~n in
  let member_cfg =
    Member.config ~apply:(fun log v -> v :: log) ~initial_app:[] params
  in
  let net =
    {
      Net.default_config with
      Net.delta = params.Params.delta;
      omission_prob = omission;
    }
  in
  let engine = Engine.create { Engine.default_config with Engine.net; seed } ~n in
  Engine.classify engine Full_stack.kind_of_msg;
  let rng = Rng.create (seed + 5) in
  let clocks =
    Array.init n (fun _ ->
        Hardware_clock.random rng ~max_offset ~max_drift:1e-5)
  in
  let views = ref [] in
  let started = ref [] in
  let deliveries = ref [] in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Full_stack.Member_obs (Member.View_installed { group; group_id }) ->
        views := (at, proc, group_id, group) :: !views
      | Full_stack.Member_obs (Member.Delivered { proposal; _ }) ->
        deliveries := (proc, proposal.Proposal.payload) :: !deliveries
      | Full_stack.Member_started -> started := proc :: !started
      | _ -> ());
  let automaton = Full_stack.automaton member_cfg cs_cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n);
  { engine; views; started; deliveries }

let latest_views h ~n =
  List.filter_map
    (fun p ->
      match Engine.state_of h.engine p with
      | Some st -> (
        match Full_stack.member st with
        | Some m when Member.has_group m -> Some (Member.group_id m, Member.group m)
        | _ -> None)
      | None -> None)
    (Proc_id.all ~n)

let test_members_start_after_sync () =
  let h = build () in
  Engine.run h.engine ~until:(Time.of_sec 1);
  check Alcotest.int "all five members started" 5 (List.length !(h.started))

let test_group_forms_over_real_clocks () =
  let h = build () in
  Engine.run h.engine ~until:(Time.of_sec 2);
  let full =
    List.filter (fun (_, _, _, g) -> Proc_set.cardinal g = 5) !(h.views)
  in
  check Alcotest.bool "everyone installed the full group" true
    (List.length full >= 5);
  let current = latest_views h ~n:5 in
  check Alcotest.int "five current views" 5 (List.length current);
  match current with
  | (gid, g) :: rest ->
    List.iter
      (fun (gid', g') ->
        check
          (Alcotest.testable Group_id.pp Group_id.equal)
          "same gid" gid gid';
        check Alcotest.bool "same group" true (Proc_set.equal g g'))
      rest
  | [] -> Alcotest.fail "no views"

let test_crash_excluded_and_rejoins () =
  let h = build () in
  Engine.run h.engine ~until:(Time.of_sec 2);
  Engine.crash_at h.engine (Time.of_sec 2) (pid 2);
  Engine.run h.engine ~until:(Time.of_sec 5);
  let survivors = List.filter (fun p -> not (Proc_id.equal p (pid 2))) (Proc_id.all ~n:5) in
  List.iter
    (fun p ->
      match Engine.state_of h.engine p with
      | Some st -> (
        match Full_stack.member st with
        | Some m ->
          check Alcotest.bool "victim excluded" false
            (Proc_set.mem (pid 2) (Member.group m))
        | None -> Alcotest.fail "member missing")
      | None -> Alcotest.fail "survivor down")
    survivors;
  Engine.recover_at h.engine (Time.of_sec 5) (pid 2);
  Engine.run h.engine ~until:(Time.of_sec 12);
  let current = latest_views h ~n:5 in
  check Alcotest.int "all back" 5 (List.length current);
  List.iter
    (fun (_, g) -> check Alcotest.int "full group" 5 (Proc_set.cardinal g))
    current

let test_updates_deliver_over_real_clocks () =
  let h = build () in
  Engine.run h.engine ~until:(Time.of_sec 2);
  for i = 0 to 9 do
    Engine.inject_at h.engine
      (Time.add (Time.of_sec 2) (Time.of_ms (30 * i)))
      (pid (i mod 5))
      (Full_stack.submit ~semantics:Semantics.total_strong i)
  done;
  Engine.run h.engine ~until:(Time.of_sec 5);
  (* every member delivered all ten updates *)
  List.iter
    (fun p ->
      let mine =
        List.filter (fun (q, _) -> Proc_id.equal p q) !(h.deliveries)
      in
      check Alcotest.int
        (Fmt.str "deliveries at %a" Proc_id.pp p)
        10 (List.length mine))
    (Proc_id.all ~n:5);
  (* and in the same total order *)
  let order p =
    List.rev
      (List.filter_map
         (fun (q, v) -> if Proc_id.equal p q then Some v else None)
         !(h.deliveries))
  in
  let reference = order (pid 0) in
  List.iter
    (fun p ->
      check (Alcotest.list Alcotest.int) "same order" reference (order p))
    (Proc_id.all ~n:5)

let test_heavy_drift () =
  (* 1e-4 drift (the paper's worst-case quartz bound) and half-second
     offsets: the stack must still form and operate *)
  let params = Params.make ~n:5 () in
  let cs_cfg = Clocksync.Protocol.default_config ~n:5 in
  let member_cfg =
    Member.config ~apply:(fun log v -> v :: log) ~initial_app:[] params
  in
  let engine =
    Engine.create
      { Engine.default_config with
        Engine.net = { Net.default_config with Net.delta = params.Params.delta };
        seed = 21 }
      ~n:5
  in
  Engine.classify engine Full_stack.kind_of_msg;
  let rng = Rng.create 22 in
  let clocks =
    Array.init 5 (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_ms 500) ~max_drift:1e-4)
  in
  let automaton = Full_stack.automaton member_cfg cs_cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n:5);
  for i = 0 to 9 do
    Engine.inject_at engine
      (Time.add (Time.of_sec 2) (Time.of_ms (40 * i)))
      (pid (i mod 5))
      (Full_stack.submit ~semantics:Semantics.total_strong i)
  done;
  Engine.run engine ~until:(Time.of_sec 6);
  let views = latest_views { engine; views = ref []; started = ref []; deliveries = ref [] } ~n:5 in
  check Alcotest.int "all operational under heavy drift" 5 (List.length views);
  List.iter
    (fun (_, g) -> check Alcotest.int "full group" 5 (Proc_set.cardinal g))
    views;
  (* every member applied all ten updates identically *)
  let logs =
    List.filter_map
      (fun p ->
        match Engine.state_of engine p with
        | Some st -> Option.map Member.app (Full_stack.member st)
        | None -> None)
      (Proc_id.all ~n:5)
  in
  (match logs with
  | first :: rest ->
    check Alcotest.int "ten updates" 10 (List.length first);
    List.iter
      (fun l -> check Alcotest.bool "identical" true (l = first))
      rest
  | [] -> Alcotest.fail "no logs")

let test_robust_to_loss () =
  let h = build ~seed:11 ~omission:0.05 () in
  Engine.run h.engine ~until:(Time.of_sec 4);
  let current = latest_views h ~n:5 in
  check Alcotest.int "five views despite loss" 5 (List.length current);
  List.iter
    (fun (_, g) -> check Alcotest.int "full group" 5 (Proc_set.cardinal g))
    current

let () =
  Alcotest.run "full-stack"
    [
      ( "fig.1 composition",
        [
          Alcotest.test_case "members start after sync" `Quick
            test_members_start_after_sync;
          Alcotest.test_case "group forms" `Quick test_group_forms_over_real_clocks;
          Alcotest.test_case "crash + rejoin" `Quick test_crash_excluded_and_rejoins;
          Alcotest.test_case "updates deliver" `Quick
            test_updates_deliver_over_real_clocks;
          Alcotest.test_case "robust to loss" `Quick test_robust_to_loss;
          Alcotest.test_case "heavy drift" `Quick test_heavy_drift;
        ] );
    ]
